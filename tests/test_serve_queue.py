"""Unit tests for the service core: queue, coalescer, quotas, autoscaler.

Everything here drives the synchronous state machine directly — no
sockets, no event loop — which is exactly why the queue layer is kept
asyncio-free.
"""

from __future__ import annotations

import pytest

from repro.orchestrate.job import Job, JobResult
from repro.serve import (
    Autoscaler,
    JobQueue,
    QuotaExceeded,
    TenantQuota,
    ValidationError,
    job_from_request,
    tenant_from_headers,
)
from repro.serve.metrics import LatencyWindow


def probe(value: int = 0, seconds: float = 0.0) -> Job:
    params = {"value": value}
    if seconds:
        params.update(behavior="sleep", seconds=seconds)
    return Job(kind="probe", params=params)


def result_for(job: Job) -> JobResult:
    return JobResult(kind=job.kind, payload={"value": job.params.get("value", 0)})


def make_queue(max_queued: int = 4, max_running: int = 2) -> JobQueue:
    return JobQueue(quota=TenantQuota(max_queued=max_queued, max_running=max_running))


class TestValidation:
    def test_round_trips_a_valid_body(self):
        body = {"kind": "sweep", "topology": "sf:q=5", "load": 0.4, "seed": 3}
        job = job_from_request(body)
        assert job.topology == "sf:q=5"
        assert job.load == 0.4

    def test_rejects_non_object(self):
        with pytest.raises(ValidationError):
            job_from_request([1, 2])

    def test_rejects_unknown_field(self):
        with pytest.raises(ValidationError, match="unknown job field"):
            job_from_request({"kind": "sweep", "topology": "sf:q=5", "speed": 9})

    def test_rejects_wrong_type(self):
        with pytest.raises(ValidationError, match="'load'"):
            job_from_request({"kind": "sweep", "topology": "sf:q=5", "load": "fast"})
        with pytest.raises(ValidationError, match="'seed'"):
            job_from_request({"kind": "sweep", "topology": "sf:q=5", "seed": True})

    def test_rejects_unknown_kind(self):
        with pytest.raises(ValidationError, match="kind"):
            job_from_request({"kind": "banana"})

    def test_requires_topology_for_sim_kinds(self):
        with pytest.raises(ValidationError, match="topology"):
            job_from_request({"kind": "sweep"})
        job_from_request({"kind": "probe"})  # probes don't need one

    def test_jobs_carry_simulator_backend(self):
        # The config dict flows verbatim into SimConfig, so served jobs
        # can select the batched backend -- and two jobs differing only
        # in backend must neither coalesce nor share a cache entry
        # (per-backend caching keeps conformance regressions visible).
        body = {"kind": "sweep", "topology": "sf:q=5",
                "config": {"backend": "batched"}}
        job = job_from_request(body)
        assert job.sim_config().backend == "batched"
        other = job_from_request(
            {"kind": "sweep", "topology": "sf:q=5",
             "config": {"backend": "object"}}
        )
        assert job.content_hash() != other.content_hash()

    def test_tenant_header(self):
        assert tenant_from_headers({}) == "public"
        assert tenant_from_headers({"x-tenant": "team-a"}) == "team-a"
        with pytest.raises(ValidationError):
            tenant_from_headers({"x-tenant": "bad tenant!"})


class TestCoalescing:
    def test_identical_jobs_share_one_execution(self):
        q = make_queue()
        records = [q.submit(probe(7), f"t{i}") for i in range(5)]
        assert q.depth() == 1  # one execution for five records
        assert [r.coalesced for r in records] == [False, True, True, True, True]
        assert len({r.execution_id for r in records}) == 1
        assert q.metrics.misses == 1
        assert q.metrics.coalesced == 4

    def test_distinct_jobs_do_not_coalesce(self):
        q = make_queue()
        q.submit(probe(1), "a")
        q.submit(probe(2), "a")
        assert q.depth() == 2

    def test_all_coalesced_records_resolve_together(self):
        q = make_queue()
        records = [q.submit(probe(7), f"t{i}") for i in range(3)]
        execution = q.next_dispatch()
        assert all(q.records[r.id].status == "running" for r in records)
        resolved = q.complete(execution, result_for(execution.job))
        assert len(resolved) == 3
        assert all(r.status == "done" for r in resolved)
        assert all(r.result["payload"] == {"value": 7} for r in resolved)

    def test_coalesce_after_completion_is_a_new_execution(self):
        q = make_queue()
        q.submit(probe(7), "a")
        execution = q.next_dispatch()
        q.complete(execution, result_for(execution.job))
        record = q.submit(probe(7), "b")
        assert record.coalesced is False  # in-flight window closed

    def test_failure_propagates_to_every_record(self):
        q = make_queue()
        q.submit(probe(7), "a")
        q.submit(probe(7), "b")
        execution = q.next_dispatch()
        resolved = q.complete(execution, None, error="worker crashed")
        assert [r.status for r in resolved] == ["failed", "failed"]
        assert all("crashed" in r.error for r in resolved)
        assert q.metrics.failed == 1


class TestQuotas:
    def test_queue_quota_rejects_with_429(self):
        q = make_queue(max_queued=2)
        q.submit(probe(1), "a")
        q.submit(probe(2), "a")
        with pytest.raises(QuotaExceeded):
            q.submit(probe(3), "a")
        assert q.metrics.rejected == 1
        assert q.tenants.get("a").rejected == 1

    def test_quota_is_per_tenant(self):
        q = make_queue(max_queued=1)
        q.submit(probe(1), "a")
        q.submit(probe(2), "b")  # b's own bucket
        with pytest.raises(QuotaExceeded):
            q.submit(probe(3), "a")

    def test_coalesced_attach_is_quota_free(self):
        q = make_queue(max_queued=1)
        q.submit(probe(1), "a")
        record = q.submit(probe(1), "a")  # same hash: attaches, no slot
        assert record.coalesced is True

    def test_dispatch_honours_max_running(self):
        q = make_queue(max_queued=8, max_running=1)
        q.submit(probe(1), "a")
        q.submit(probe(2), "a")
        assert q.next_dispatch() is not None
        assert q.next_dispatch() is None  # tenant at running ceiling
        assert q.depth() == 1


class TestFairness:
    def test_round_robin_across_tenants(self):
        q = make_queue(max_queued=8, max_running=8)
        for i in range(3):
            q.submit(probe(10 + i), "alice")
        q.submit(probe(20), "bob")
        q.submit(probe(30), "carol")
        owners = []
        while True:
            execution = q.next_dispatch()
            if execution is None:
                break
            owners.append(execution.owner)
        # Interleaved, not alice's whole backlog first.
        assert owners[:3] == ["alice", "bob", "carol"]
        assert owners.count("alice") == 3

    def test_tenant_at_ceiling_does_not_starve_others(self):
        q = make_queue(max_queued=8, max_running=1)
        q.submit(probe(1), "alice")
        q.submit(probe(2), "alice")
        q.submit(probe(3), "bob")
        first = q.next_dispatch()
        second = q.next_dispatch()
        assert first.owner == "alice"
        assert second.owner == "bob"  # alice is at max_running=1
        assert q.next_dispatch() is None


class TestDrainPersistence:
    def test_save_and_restore_queued_work(self, tmp_path):
        q = make_queue()
        r1 = q.submit(probe(1), "a")
        r2 = q.submit(probe(1), "b")  # coalesced onto r1's execution
        r3 = q.submit(probe(2), "a")
        running = q.next_dispatch()  # r1's execution starts running
        state = tmp_path / "queue_state.json"
        assert q.save_state(state) == 1  # only the still-queued execution

        fresh = make_queue()
        assert fresh.load_state(state) == 1
        assert fresh.depth() == 1
        # Same record id survives the restart, so clients keep polling.
        assert r3.id in fresh.records
        assert fresh.records[r3.id].status == "queued"
        assert r1.id not in fresh.records  # running work is not resurrected
        assert running.record_ids == [r1.id, r2.id]

    def test_restored_ids_do_not_collide_with_new_ones(self, tmp_path):
        q = make_queue()
        q.submit(probe(1), "a")
        state = tmp_path / "s.json"
        q.save_state(state)
        fresh = make_queue()
        fresh.load_state(state)
        new = fresh.submit(probe(2), "a")
        assert new.id not in (r for r in [] ) or new.id != "r-000001"
        assert len(fresh.records) == 2

    def test_empty_queue_removes_stale_state(self, tmp_path):
        state = tmp_path / "s.json"
        state.write_text("{}")
        q = make_queue()
        assert q.save_state(state) == 0
        assert not state.exists()

    def test_corrupt_state_restores_nothing(self, tmp_path):
        state = tmp_path / "s.json"
        state.write_text("{ nope")
        q = make_queue()
        assert q.load_state(state) == 0
        assert q.depth() == 0

    def test_requeue_returns_execution_to_queue(self):
        q = make_queue()
        record = q.submit(probe(1), "a")
        execution = q.next_dispatch()
        assert q.records[record.id].status == "running"
        q.requeue(execution)
        assert q.records[record.id].status == "queued"
        assert q.depth() == 1
        assert q.running_count() == 0
        assert q.next_dispatch() is execution


class TestCacheHitRecords:
    def test_cache_hit_record_is_terminal_immediately(self):
        q = make_queue()
        job = probe(9)
        record = q.record_cache_hit(job, "a", result_for(job))
        assert record.status == "done"
        assert record.cached is True
        assert record.result["payload"] == {"value": 9}
        assert q.metrics.cache_hits == 1
        assert q.depth() == 0


class TestAutoscaler:
    def test_scales_up_after_sustained_pressure(self):
        scaler = Autoscaler(1, 4, up_after=2, down_after=4)
        assert scaler.observe(queued=3, running=1) == 1
        assert scaler.observe(queued=3, running=1) == 2  # second strike
        assert scaler.observe(queued=3, running=2) == 2
        assert scaler.observe(queued=3, running=2) == 3

    def test_scales_down_only_when_idle_long_enough(self):
        scaler = Autoscaler(1, 4, up_after=1, down_after=3)
        scaler.observe(queued=5, running=1)  # -> 2
        assert scaler.current == 2
        assert scaler.observe(queued=0, running=0) == 2
        assert scaler.observe(queued=0, running=0) == 2
        assert scaler.observe(queued=0, running=0) == 1  # third strike

    def test_mixed_signal_resets_hysteresis(self):
        scaler = Autoscaler(1, 4, up_after=2, down_after=2)
        scaler.observe(queued=3, running=1)
        scaler.observe(queued=0, running=1)  # busy but empty queue: reset
        assert scaler.observe(queued=3, running=1) == 1  # streak restarted
        assert scaler.observe(queued=3, running=1) == 2

    def test_respects_bounds(self):
        scaler = Autoscaler(2, 2)
        for _ in range(20):
            scaler.observe(queued=10, running=2)
        assert scaler.current == 2
        with pytest.raises(ValueError):
            Autoscaler(3, 2)


class TestLatencyWindow:
    def test_percentiles(self):
        window = LatencyWindow(window=100)
        for value in range(1, 101):  # 0.01..1.00
            window.add(value / 100)
        assert window.percentile(50) == pytest.approx(0.50)
        assert window.percentile(99) == pytest.approx(0.99)
        assert window.count == 100

    def test_empty_window(self):
        window = LatencyWindow()
        assert window.percentile(50) is None
        assert window.snapshot()["p99_s"] is None

    def test_window_is_bounded(self):
        window = LatencyWindow(window=10)
        for value in range(1000):
            window.add(float(value))
        assert window.percentile(50) >= 990  # only recent samples remain
        assert window.count == 1000
