"""Unit tests of the NIC model (injection queue, source-pull, credits)."""

import pytest

from repro.routing import MinimalRouting
from repro.sim import Network, SimConfig
from repro.topology.base import Topology


def pair(p=1):
    """Two routers, one link, *p* nodes each."""
    return Topology("pair", [[1], [0]], [p, p])


def build(p=1, config=None):
    topo = pair(p)
    net = Network(topo, MinimalRouting(topo, seed=1), config or SimConfig())
    return topo, net


class TestSubmitPath:
    def test_fifo_order(self):
        topo, net = build(p=2)
        # Node 0 sends three packets to nodes 2 and 3 alternating; with
        # a tracer we can observe delivery order = submission order.
        tracer = net.enable_trace()
        nic = net.nics[0]
        for dst in (2, 3, 2):
            nic.submit(dst, 256)
        net.engine.run()
        assert [r.dst_node for r in tracer.records] == [2, 3, 2]

    def test_send_time_spacing_at_link_rate(self):
        topo, net = build()
        tracer = net.enable_trace()
        nic = net.nics[0]
        for _ in range(3):
            nic.submit(1, 256)
        net.engine.run()
        sends = sorted(r.send_time for r in tracer.records)
        ser = net.config.packet_time_ns
        assert sends[1] - sends[0] == pytest.approx(ser)
        assert sends[2] - sends[1] == pytest.approx(ser)

    def test_queued_packets_counter(self):
        topo, net = build()
        nic = net.nics[0]
        for _ in range(5):
            nic.submit(1, 256)
        # One packet starts transmitting immediately; the rest queue.
        assert nic.queued_packets == 4
        net.engine.run()
        assert nic.queued_packets == 0


class TestSourcePull:
    def test_source_drained_lazily(self):
        topo, net = build()
        produced = []

        def gen():
            for i in range(4):
                produced.append(i)
                yield (1, 256, i)

        net.nics[0].set_source(gen())
        # Only the first descriptor is pulled synchronously.
        assert len(produced) == 1
        net.engine.run()
        assert len(produced) == 4
        assert net.stats.ejected_total == 4

    def test_source_exhaustion_clears(self):
        topo, net = build()

        def gen():
            yield (1, 256, 0)

        nic = net.nics[0]
        nic.set_source(gen())
        net.engine.run()
        assert nic.source is None

    def test_queue_takes_priority_over_source(self):
        topo, net = build(p=2)
        tracer = net.enable_trace()

        def gen():
            yield (3, 256, 0)

        nic = net.nics[0]
        nic.submit(2, 256)
        nic.set_source(gen())
        net.engine.run()
        # Both delivered; the queued packet first.
        assert [r.dst_node for r in tracer.records] == [2, 3]


class TestCreditBlocking:
    def test_injection_stalls_without_credits(self):
        # Shrink the injection buffer to 2 packets; flood 10 packets at
        # a receiver-limited destination and check the NIC never
        # overruns its credit budget.
        cfg = SimConfig(buffer_bytes_per_port=512)  # 2 packets
        topo, net = build(p=2, config=cfg)
        nic = net.nics[0]
        assert nic.credits == 2
        for _ in range(10):
            nic.submit(2, 256)
        net.engine.run()
        assert net.stats.ejected_total == 10
        assert nic.credits == 2  # all credits returned after drain

    def test_credit_return_resumes(self):
        cfg = SimConfig(buffer_bytes_per_port=256)  # a single packet
        topo, net = build(config=cfg)
        nic = net.nics[0]
        for _ in range(3):
            nic.submit(1, 256)
        net.engine.run()
        assert net.stats.ejected_total == 3
