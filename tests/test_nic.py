"""Unit tests of the NIC model (injection queue, source-pull, credits)."""

import pytest

from repro.routing import MinimalRouting
from repro.sim import Network, SimConfig
from repro.topology.base import Topology


def pair(p=1):
    """Two routers, one link, *p* nodes each."""
    return Topology("pair", [[1], [0]], [p, p])


def build(p=1, config=None):
    topo = pair(p)
    net = Network(topo, MinimalRouting(topo, seed=1), config or SimConfig())
    return topo, net


class TestSubmitPath:
    def test_fifo_order(self):
        topo, net = build(p=2)
        # Node 0 sends three packets to nodes 2 and 3 alternating; with
        # a tracer we can observe delivery order = submission order.
        tracer = net.enable_trace()
        nic = net.nics[0]
        for dst in (2, 3, 2):
            nic.submit(dst, 256)
        net.engine.run()
        assert [r.dst_node for r in tracer.records] == [2, 3, 2]

    def test_send_time_spacing_at_link_rate(self):
        topo, net = build()
        tracer = net.enable_trace()
        nic = net.nics[0]
        for _ in range(3):
            nic.submit(1, 256)
        net.engine.run()
        sends = sorted(r.send_time for r in tracer.records)
        ser = net.config.packet_time_ns
        assert sends[1] - sends[0] == pytest.approx(ser)
        assert sends[2] - sends[1] == pytest.approx(ser)

    def test_queued_packets_counter(self):
        topo, net = build()
        nic = net.nics[0]
        for _ in range(5):
            nic.submit(1, 256)
        # One packet starts transmitting immediately; the rest queue.
        assert nic.queued_packets == 4
        net.engine.run()
        assert nic.queued_packets == 0


class TestSourcePull:
    def test_source_drained_lazily(self):
        topo, net = build()
        produced = []

        def gen():
            for i in range(4):
                produced.append(i)
                yield (1, 256, i)

        net.nics[0].set_source(gen())
        # Only the first descriptor is pulled synchronously.
        assert len(produced) == 1
        net.engine.run()
        assert len(produced) == 4
        assert net.stats.ejected_total == 4

    def test_source_exhaustion_clears(self):
        topo, net = build()

        def gen():
            yield (1, 256, 0)

        nic = net.nics[0]
        nic.set_source(gen())
        net.engine.run()
        assert nic.source is None

    def test_queue_takes_priority_over_source(self):
        topo, net = build(p=2)
        tracer = net.enable_trace()

        def gen():
            yield (3, 256, 0)

        nic = net.nics[0]
        nic.submit(2, 256)
        nic.set_source(gen())
        net.engine.run()
        # Both delivered; the queued packet first.
        assert [r.dst_node for r in tracer.records] == [2, 3]


class TestCreditExhaustionRetry:
    """Deterministic resume after injection-credit exhaustion.

    When a packet is ready but ``credits <= 0``, the NIC must record the
    stall and re-attempt when the credit returns -- in an order fixed by
    the event heap's FIFO tie-breaker, so seeded runs replay
    bit-identically regardless of which routing implementation
    (compiled route cache or legacy per-packet) produced the routes.
    """

    def test_credit_stall_counter_counts_real_stalls(self):
        cfg = SimConfig(buffer_bytes_per_port=256)  # a single credit
        topo, net = build(config=cfg)
        nic = net.nics[0]
        for _ in range(4):
            nic.submit(1, 256)
        net.engine.run()
        assert net.stats.ejected_total == 4
        assert nic.credit_stalls > 0  # the stall path really ran
        assert nic.credits == 1  # and the credit came back

    def test_no_stalls_with_ample_credits(self):
        topo, net = build()  # paper-sized buffers
        net.nics[0].submit(1, 256)
        net.engine.run()
        assert net.nics[0].credit_stalls == 0

    def test_retry_replays_bit_identically(self):
        def run_once():
            cfg = SimConfig(buffer_bytes_per_port=256)
            topo, net = build(p=2, config=cfg)
            tracer = net.enable_trace()
            for nic in (net.nics[0], net.nics[1]):
                for dst in (2, 3, 2, 3):
                    nic.submit(dst, 256)
            net.engine.run()
            assert any(n.credit_stalls for n in net.nics)
            return [(r.pid, r.send_time, r.eject_time) for r in tracer.records]

        assert run_once() == run_once()

    def test_retry_order_stable_across_compiled_and_legacy(self, sf5):
        # The regression this guards: a credit-starved NIC resuming in a
        # different order depending on the routing implementation would
        # silently fork compiled and legacy trajectories.
        from repro.traffic import UniformRandom

        def run_once(compiled):
            routing = MinimalRouting(sf5, seed=1)
            routing.compiled = compiled
            net = Network(sf5, routing, SimConfig(buffer_bytes_per_port=512))
            tracer = net.enable_trace()
            net.run_synthetic(UniformRandom(sf5.num_nodes), load=0.9,
                              warmup_ns=200, measure_ns=800, seed=7,
                              drain=True)
            assert any(n.credit_stalls for n in net.nics)
            return [(r.pid, r.src_node, r.dst_node, r.send_time, r.eject_time)
                    for r in tracer.records]

        assert run_once(True) == run_once(False)


class TestCreditBlocking:
    def test_injection_stalls_without_credits(self):
        # Shrink the injection buffer to 2 packets; flood 10 packets at
        # a receiver-limited destination and check the NIC never
        # overruns its credit budget.
        cfg = SimConfig(buffer_bytes_per_port=512)  # 2 packets
        topo, net = build(p=2, config=cfg)
        nic = net.nics[0]
        assert nic.credits == 2
        for _ in range(10):
            nic.submit(2, 256)
        net.engine.run()
        assert net.stats.ejected_total == 10
        assert nic.credits == 2  # all credits returned after drain

    def test_credit_return_resumes(self):
        cfg = SimConfig(buffer_bytes_per_port=256)  # a single packet
        topo, net = build(config=cfg)
        nic = net.nics[0]
        for _ in range(3):
            nic.submit(1, 256)
        net.engine.run()
        assert net.stats.ejected_total == 3
