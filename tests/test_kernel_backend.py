"""Kernel-backend specifics: loading, graceful degradation, profile
stats and audit plumbing.

Bit-identity of the kernel backend is pinned by the golden conformance
suite (tests/test_golden_conformance.py) and the near-saturation
equivalence matrix (tests/test_vec_backend.py); this file covers what
those cannot: the build/load machinery, the forced-failure fallback to
the batched backend, and the kernel-only observability surface
(``kernel_stats``, the escape split).
"""

from __future__ import annotations

import pytest

from repro.routing import MinimalRouting, UGALRouting
from repro.sim import Network, SimConfig
from repro.sim.vec import kernel as kernel_mod
from repro.sim.vec.engine import BatchedEngine
from repro.topology import SlimFly
from repro.traffic import UniformRandom

needs_kernel = pytest.mark.skipif(
    kernel_mod.load_kernel() is None,
    reason="compiled kernel unavailable (no compiler or REPRO_NO_KERNEL set)",
)


@pytest.fixture
def fresh_loader():
    """Reset the module-level load cache around a test, restoring the
    (possibly successful) cached attempt afterwards so test order
    doesn't matter."""
    saved = (kernel_mod._mod, kernel_mod._attempted, kernel_mod.load_error)
    kernel_mod._reset_for_tests()
    try:
        yield
    finally:
        kernel_mod._mod, kernel_mod._attempted, kernel_mod.load_error = saved


class TestGracefulDegradation:
    def test_forced_load_failure_warns_and_falls_back(
        self, fresh_loader, monkeypatch
    ):
        # The satellite contract: no compiler (forced here via the env
        # gate) means ONE clear warning and a working batched run, not
        # an error.
        monkeypatch.setenv("REPRO_NO_KERNEL", "1")
        topo = SlimFly(5)
        with pytest.warns(RuntimeWarning, match="falling back"):
            net = Network(topo, MinimalRouting(topo),
                          SimConfig(backend="kernel"))
        assert net.backend_in_use == "batched"
        assert type(net.engine) is BatchedEngine
        assert kernel_mod.load_error == "disabled by REPRO_NO_KERNEL"
        # The degraded network still simulates.
        stats = net.run_synthetic(
            UniformRandom(topo.num_nodes), load=0.3,
            warmup_ns=200.0, measure_ns=400.0, seed=0, drain=True,
        )
        assert stats.ejected_packets > 0

    def test_load_failure_is_cached_per_process(self, fresh_loader,
                                                monkeypatch):
        monkeypatch.setenv("REPRO_NO_KERNEL", "1")
        assert kernel_mod.load_kernel() is None
        first_error = kernel_mod.load_error
        # Clearing the env does not retry: one attempt per process.
        monkeypatch.delenv("REPRO_NO_KERNEL")
        assert kernel_mod.load_kernel() is None
        assert kernel_mod.load_error == first_error


@needs_kernel
class TestKernelEngine:
    def _net(self, **cfg) -> Network:
        topo = SlimFly(5)
        routing = UGALRouting(topo, seed=0)
        return Network(topo, routing, SimConfig(backend="kernel", **cfg))

    def test_backend_in_use_reports_kernel(self):
        net = self._net()
        assert net.backend_in_use == "kernel"
        assert type(net.engine).__name__ == "KernelEngine"

    def test_kernel_stats_expose_escape_split(self, monkeypatch):
        # The --profile satellite: in-kernel event counts, the
        # time/count split of every Python escape class, and the
        # fast-path counters showing per-packet work stayed in C.
        # (The CI no-fastpath leg exports the escape hatch globally;
        # this test is specifically about the fast path being live.)
        monkeypatch.delenv("REPRO_KERNEL_NO_FASTPATH", raising=False)
        net = self._net()
        net.run_synthetic(
            UniformRandom(net.topology.num_nodes), load=0.5,
            warmup_ns=300.0, measure_ns=1200.0, seed=1, drain=True,
        )
        s = net.engine.kernel_stats()
        assert s["events"] > 0
        assert s["runs"] >= 1
        assert set(s["escapes"]) == {
            "make_packet", "deliver", "call", "fault_divert", "stats_flush"}
        assert set(s["fast_path"]) == {"make_packet", "deliver"}
        # UGAL routing compiles to the C fast path: every injected
        # packet routes and lands without a per-packet Python escape.
        assert s["escapes"]["make_packet"]["count"] == 0
        assert s["escapes"]["deliver"]["count"] == 0
        assert (s["fast_path"]["make_packet"]["count"]
                == net.stats.injected_total)
        assert s["fast_path"]["deliver"]["count"] == net.stats.ejected_total
        assert s["escapes"]["fault_divert"]["count"] == 0
        # Cold paths still escape: the scheduled reset_utilization CALL
        # and the accumulator flushes it fences.
        assert s["escapes"]["call"]["count"] >= 1
        assert 0.0 < s["escape_ns"] < s["run_ns"]
        # Opcode counters sum to the events the engine reported.
        assert sum(s["op_counts"].values()) == s["events"]

    def test_no_fastpath_escape_hatch_restores_per_packet_escapes(
        self, monkeypatch
    ):
        # REPRO_KERNEL_NO_FASTPATH forces the per-packet escapes (the
        # fallback leg the conformance matrix parametrizes over).
        monkeypatch.setenv("REPRO_KERNEL_NO_FASTPATH", "1")
        net = self._net()
        net.run_synthetic(
            UniformRandom(net.topology.num_nodes), load=0.5,
            warmup_ns=300.0, measure_ns=1200.0, seed=1, drain=True,
        )
        s = net.engine.kernel_stats()
        assert s["fast_path"]["make_packet"]["count"] == 0
        assert s["fast_path"]["deliver"]["count"] == 0
        assert s["escapes"]["make_packet"]["count"] > 0
        assert s["escapes"]["deliver"]["count"] == net.stats.ejected_total

    def test_iter_pending_yields_engine_format_records(self):
        # BatchedChecker.audit classifies pending records by integer op;
        # the kernel's heap dump must use the same 6-tuple layout,
        # including CALL records carrying their callable and args.
        net = self._net()
        eng = net.engine
        marker = lambda: None  # noqa: E731
        eng.schedule(5.0, marker, 1, 2)
        eng._seq += 1
        eng._push(3.0, eng._seq, 0, 7, 1, 0)  # a RECV-shaped record
        recs = sorted(eng.iter_pending())
        assert len(recs) == 2 and eng.pending == 2
        t, s, op, a, b, c = recs[0]
        assert (t, op, a, b, c) == (3.0, 0, 7, 1, 0)
        t, s, op, fn, args, _ = recs[1]
        assert (t, op, fn, args) == (5.0, 6, marker, (1, 2))
        eng.clear()
        assert eng.pending == 0

    def test_checked_kernel_run_audits(self):
        # The audit-based checker runs over kernel state exactly as it
        # does over batched state (same SoA arrays, same iter_pending).
        net = self._net(check=True)
        net.run_synthetic(
            UniformRandom(net.topology.num_nodes), load=0.5,
            warmup_ns=300.0, measure_ns=1200.0, seed=3, drain=True,
        )
        assert net.checker.audits > 0
        net.checker.verify_quiescent()
        assert net.stats.injected_total == net.stats.ejected_total

    def test_callback_exception_propagates_and_engine_survives(self):
        # An exception inside a CALL escape must surface to the caller
        # with the clock/sequence state written back (the C loop's
        # ``finally``), leaving the engine usable.
        net = self._net()
        eng = net.engine

        def boom():
            raise RuntimeError("scheduled failure")

        seen = []
        eng.schedule(1.0, seen.append, "before")
        eng.schedule(2.0, boom)
        eng.schedule(3.0, seen.append, "after")
        with pytest.raises(RuntimeError, match="scheduled failure"):
            eng.run()
        assert seen == ["before"]
        assert eng.now == 2.0  # failed event's time was written back
        assert eng.pending == 1  # the 'after' event survived the error
        eng.run()
        assert seen == ["before", "after"]
