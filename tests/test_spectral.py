"""Tests for the spectral analysis of router graphs."""

import math

import pytest

from repro.analysis.spectral import spectral_stats
from repro.topology import MLFM, OFT, FatTree2L, HyperX2D, SlimFly
from repro.topology.base import Topology


class TestBasics:
    def test_regular_perron_is_degree(self, sf5):
        s = spectral_stats(sf5)
        assert s.degree == pytest.approx(sf5.network_radix)

    def test_complete_graph_spectrum(self):
        # K4: eigenvalues {3, -1, -1, -1}.
        k4 = Topology("k4", [[1, 2, 3], [0, 2, 3], [0, 1, 3], [0, 1, 2]], [1] * 4)
        s = spectral_stats(k4)
        assert s.degree == pytest.approx(3.0)
        assert s.lambda2 == pytest.approx(-1.0)
        assert s.spectral_gap == pytest.approx(4.0)

    def test_cheeger_bounds_ordered(self, mlfm4):
        s = spectral_stats(mlfm4)
        assert 0 <= s.cheeger_lower <= s.cheeger_upper

    def test_cycle_graph_small_gap(self):
        n = 12
        cyc = Topology(
            "c12", [[(i - 1) % n, (i + 1) % n] for i in range(n)], [1] * n
        )
        s = spectral_stats(cyc)
        # Cycles are poor expanders: gap = 2 - 2cos(2 pi / n).
        assert s.spectral_gap == pytest.approx(2 - 2 * math.cos(2 * math.pi / n), abs=1e-6)


class TestPaperTopologies:
    def test_slim_fly_is_ramanujan(self):
        # MMS graphs are near-Ramanujan; at these sizes they pass the
        # exact bound |lambda| <= 2 sqrt(d-1).
        for q in (5, 7, 9, 13):
            s = spectral_stats(SlimFly(q))
            assert s.is_ramanujan, (q, s)

    def test_sf_known_second_eigenvalue(self):
        # The MMS spectrum is {d, (-1 + sqrt(2q - delta_adjust))/2 ...};
        # empirically lambda2 = (q - 1) / 2 for delta = +1 instances.
        for q in (5, 13):
            s = spectral_stats(SlimFly(q))
            assert s.lambda2 == pytest.approx((q - 1) / 2, abs=1e-6)

    def test_indirect_topologies_bipartite(self, mlfm4, oft4, ft2):
        for topo in (mlfm4, oft4, ft2):
            assert spectral_stats(topo).bipartite

    def test_direct_topologies_not_bipartite(self, sf5, hyperx):
        for topo in (sf5, hyperx):
            assert not spectral_stats(topo).bipartite

    def test_ft2_perfect_gap(self, ft2):
        # Complete bipartite K(r, r/2): nontrivial eigenvalues all 0.
        s = spectral_stats(ft2)
        assert s.lambda2 == pytest.approx(0.0, abs=1e-9)

    def test_hyperx_product_spectrum(self, hyperx):
        # Cartesian product of two K4: eigenvalues are sums of
        # {3, -1} + {3, -1} -> lambda2 = 3 - 1 = 2.
        s = spectral_stats(hyperx)
        assert s.lambda2 == pytest.approx(2.0, abs=1e-9)

    def test_gap_orders_expanders(self):
        # Relative to the degree, the SF keeps a much larger gap than
        # the same-degree-scale MLFM (expander vs stacked structure).
        sf = spectral_stats(SlimFly(5))
        mlfm = spectral_stats(MLFM(5))
        assert sf.spectral_gap / sf.degree > mlfm.spectral_gap / mlfm.degree
