"""Route-cache equivalence: compiled routing is bit-identical to legacy.

The PR contract for the precompiled route-candidate cache
(:mod:`repro.routing.cache`): ``compiled=True`` (the default) changes
*how fast* a route is produced, never *which* route -- the RNG draw
order and every float in the scoring arithmetic match the legacy
per-packet construction exactly.  These tests enforce that end to end:
identical :class:`~repro.sim.stats.WindowStats` for every
topology x routing combination in ``repro.experiments.configs`` under
fixed seeds, serially and through the orchestrated process pool.
"""

import dataclasses

import pytest

from repro.cli import parse_topology
from repro.experiments import load_sweep
from repro.experiments.configs import configs_for_scale
from repro.orchestrate import Orchestrator, orchestrated_load_sweep
from repro.routing import UGALRouting
from repro.sim import Network
from repro.sim.config import SimConfig
from repro.traffic import UniformRandom

WINDOWS = dict(warmup_ns=500.0, measure_ns=1500.0)
CONFIGS = configs_for_scale("tiny")


def _force_mode(routing, compiled: bool):
    """Switch a routing object (and any sub-routers) between the
    compiled and legacy paths."""
    routing.compiled = compiled
    for sub in ("_minimal", "_indirect"):
        if hasattr(routing, sub):
            getattr(routing, sub).compiled = compiled
    return routing


def _fingerprint(stats):
    """WindowStats has no __eq__; compare every field exactly."""
    return {name: getattr(stats, name) for name in stats.__slots__}


def _run(cfg, kind: str, compiled: bool, seed: int = 5):
    topo = cfg.topology()
    builder = {"min": cfg.minimal, "inr": cfg.indirect, "ugal": cfg.adaptive}[kind]
    routing = _force_mode(builder(topo), compiled)
    net = Network(topo, routing, SimConfig())
    stats = net.run_synthetic(
        UniformRandom(topo.num_nodes), load=0.45, seed=seed, **WINDOWS
    )
    return _fingerprint(stats)


@pytest.mark.parametrize("kind", ["min", "inr", "ugal"])
@pytest.mark.parametrize("cfg", CONFIGS, ids=lambda c: c.key)
def test_cached_matches_legacy_serial(cfg, kind):
    # Exact equality, not approx: same seeds must mean the same bits.
    assert _run(cfg, kind, compiled=True) == _run(cfg, kind, compiled=False)


def test_compiled_ports_match_topology():
    """Cached Route.ports carry the exact per-hop output ports."""
    cfg = CONFIGS[0]
    topo = cfg.topology()
    routing = cfg.adaptive(topo)
    cache = routing.cache
    n = topo.num_routers
    checked = 0
    for src in range(n):
        for dst in range(n):
            for route in cache.minimal_candidates(src, dst):
                routers = route.routers
                assert route.ports == tuple(
                    topo.port(routers[i], routers[i + 1])
                    for i in range(len(routers) - 1)
                )
                checked += 1
    assert checked >= n * (n - 1)


def test_shared_cache_reused_across_subrouters():
    """UGAL's minimal/indirect sub-routers compile each pair once."""
    cfg = CONFIGS[0]
    topo = cfg.topology()
    routing = cfg.adaptive(topo)
    assert routing._minimal.cache is routing.cache
    assert routing._indirect.cache is routing.cache
    a = routing.cache.minimal_candidates(0, 1)
    b = routing._minimal.cache.minimal_candidates(0, 1)
    assert a is b


class TestOrchestratedPool:
    """The pool runs the compiled default; it must still match a serial
    legacy-mode sweep bit-for-bit."""

    TOPOLOGY = "sf:q=5,p=floor"
    LOADS = [0.3, 0.6]
    KWARGS = {"cost_mode": "sf", "c_sf": 1.0, "num_indirect": 4}
    POOL_WINDOWS = dict(warmup_ns=200.0, measure_ns=600.0)

    def test_ugal_pool_matches_serial_legacy(self):
        topo = parse_topology(self.TOPOLOGY)
        serial = load_sweep(
            topo,
            lambda t, s: _force_mode(
                UGALRouting(t, seed=s, **self.KWARGS), compiled=False
            ),
            lambda t: UniformRandom(t.num_nodes),
            self.LOADS,
            seed=3,
            **self.POOL_WINDOWS,
        )
        orch = orchestrated_load_sweep(
            self.TOPOLOGY,
            ("ugal", dict(self.KWARGS)),
            ("uniform", {}),
            self.LOADS,
            orchestrator=Orchestrator(jobs=2),
            seed=3,
            **self.POOL_WINDOWS,
        )
        assert len(serial) == len(orch)
        for a, b in zip(serial, orch):
            assert dataclasses.asdict(a) == dataclasses.asdict(b)
