"""repro.resilience: fault schedules, incremental RouteCache
invalidation, degraded-topology legality and fault-aware simulation.

Complements the fault-schedule golden (tests/test_golden_conformance):
here we pin the *component* contracts -- schedule grammar and semantic
validation, row-level cache invalidation/refill/restore cycles, BFS
fallback behaviour, serialisation of degraded topologies, and the
cache-keying separation between fault-free and fault-bearing runs.
"""

from __future__ import annotations

import json

import pytest

from repro.analysis.faults import DegradedTopology, degrade, safe_vc_policy
from repro.experiments import conformance
from repro.orchestrate import Job, sim_config_dict
from repro.resilience import FaultSchedule
from repro.routing import MinimalRouting, UGALRouting
from repro.routing.base import ROUTE_INDIRECT
from repro.routing.cache import NoRouteError, RouteCache
from repro.routing.deadlock import build_cdg_minimal, find_cycle
from repro.serve.coalesce import Coalescer, Execution
from repro.serve.models import job_from_request
from repro.sim.config import SimConfig
from repro.sim.network import Network
from repro.topology.serialize import (
    load_topology,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)
from repro.topology.validate import validate_topology
from repro.workload import build_workload
from repro.experiments.runner import run_workload


def _link(topo, rid=0):
    """The normalized lowest-numbered link incident to router *rid*."""
    v = min(topo.neighbors(rid))
    return (min(rid, v), max(rid, v))


# ---------------------------------------------------------------------------
# Schedule grammar and semantic validation.
# ---------------------------------------------------------------------------


class TestFaultScheduleParsing:
    def test_valid_specs_parse(self):
        sched = FaultSchedule(
            ["fail@600:0-1", "recover@900:0-1", "fail@100:r3",
             "drip@50:n=3,every=10,seed=2"]
        )
        # fail + recover + router-fail + three drip instances.
        assert len(sched) == 6

    @pytest.mark.parametrize("spec", [
        "nonsense",
        "fail600:0-1",           # missing @
        "explode@600:0-1",       # unknown kind
        "fail@abc:0-1",          # non-numeric time
        "fail@-5:0-1",           # negative time
        "fail@600",              # missing target
        "fail@600:0-0",          # self-link
        "fail@600:zz",           # garbage target
        "fail@600:rX",           # non-numeric router id
        "drip@50:n=2",           # drip without every=
        "drip@50:n=0,every=10",  # n < 1
        "drip@50:n=2,every=0",   # every <= 0
        "drip@50:bogus",         # not key=value
        "drip@50:n=2,every=10,wat=1",  # unknown drip key
    ])
    def test_malformed_specs_raise(self, spec):
        with pytest.raises(ValueError):
            FaultSchedule([spec])

    def test_sim_config_rejects_malformed_specs(self):
        with pytest.raises(ValueError):
            SimConfig(faults=("fail@600",))
        with pytest.raises(ValueError):
            SimConfig(fault_policy="explode")

    def test_sim_config_normalizes_list_specs(self):
        cfg = SimConfig(faults=["fail@600:0-1"])
        assert cfg.faults == ("fail@600:0-1",)


class TestFaultScheduleExpand:
    def test_expand_orders_events_by_time(self, sf5):
        u, v = _link(sf5)
        sched = FaultSchedule(
            [f"recover@900:{u}-{v}", f"fail@600:{u}-{v}",
             "drip@700:n=2,every=50,seed=1"]
        )
        events = sched.expand(sf5)
        assert [e.time for e in events] == sorted(e.time for e in events)
        assert [e.kind for e in events] == ["fail", "fail", "fail", "recover"]

    def test_expand_is_deterministic(self, sf5):
        specs = ["drip@100:n=4,every=25,seed=9"]
        first = FaultSchedule(specs).expand(sf5)
        second = FaultSchedule(specs).expand(sf5)
        assert [e.links for e in first] == [e.links for e in second]
        # Each drip picks a live link of the topology.
        failed = set()
        for e in first:
            (link,) = e.links
            assert sf5.is_edge(*link)
            assert link not in failed
            failed.add(link)

    def test_router_fail_expands_to_all_live_links(self, sf5):
        events = FaultSchedule(["fail@10:r0"]).expand(sf5)
        (ev,) = events
        expected = {(min(0, n), max(0, n)) for n in sf5.neighbors(0)}
        assert set(ev.links) == expected

    def test_semantic_errors(self, sf5):
        u, v = _link(sf5)
        # A non-adjacent pair: router 0's neighbour list is sparse.
        w = next(r for r in range(sf5.num_routers)
                 if r != 0 and r not in sf5.neighbors(0))
        cases = [
            [f"fail@10:0-{w}"],                           # not a link
            [f"fail@10:{u}-{v}", f"fail@20:{u}-{v}"],     # double fail
            [f"recover@10:{u}-{v}"],                      # recover live link
            ["fail@10:r9999"],                            # unknown router
            ["recover@10:r0"],                            # nothing to recover
        ]
        for specs in cases:
            with pytest.raises(ValueError):
                FaultSchedule(specs).expand(sf5)


# ---------------------------------------------------------------------------
# RouteCache incremental invalidation.
# ---------------------------------------------------------------------------


@pytest.fixture()
def cache(sf5):
    return RouteCache(sf5, safe_vc_policy(sf5))


class TestRouteCacheFaults:
    def _fill_all_from(self, cache, src):
        n = cache.topology.num_routers
        for dst in range(n):
            if dst != src:
                cache.minimal_fill(src, dst)

    def test_fail_invalidates_only_crossing_rows(self, cache, sf5):
        e = _link(sf5)
        self._fill_all_from(cache, 0)
        row = cache.minimal_rows[0]
        before = {dst: row[dst] for dst in range(sf5.num_routers) if dst != 0}
        crossing = {
            dst for dst, cands in before.items()
            if any(e in {(min(a, b), max(a, b))
                         for a, b in zip(r.routers, r.routers[1:])}
                   for r in cands)
        }
        assert crossing, "sanity: the failed link must appear in some row"
        cache.fail_link(*e)
        for dst, cands in before.items():
            if dst in crossing:
                assert row[dst] is None, f"row 0->{dst} should be invalidated"
            else:
                # Untouched entries keep their identity: invalidation is
                # row-surgical, not a global flush.
                assert row[dst] is cands

    def test_refill_avoids_failed_link(self, cache, sf5):
        e = _link(sf5)
        cache.fail_link(*e)
        for dst in range(1, sf5.num_routers):
            for route in cache.minimal_fill(0, dst):
                hops = {(min(a, b), max(a, b))
                        for a, b in zip(route.routers, route.routers[1:])}
                assert e not in hops

    def test_last_candidate_removed_falls_back_to_bfs(self, cache, sf5):
        # Adjacent routers on a girth-5 graph have exactly one minimal
        # path (the direct link); failing it forces the BFS fallback.
        u, v = _link(sf5)
        assert len(cache.minimal_fill(u, v)) == 1
        cache.fail_link(u, v)
        (fallback,) = cache.minimal_fill(u, v)
        assert len(fallback.routers) >= 3  # no triangles: detour is 3+ hops
        assert fallback.routers[0] == u and fallback.routers[-1] == v
        assert (u, v) not in {(min(a, b), max(a, b))
                              for a, b in zip(fallback.routers,
                                              fallback.routers[1:])}
        # Beyond the minimal VC budget the fallback is labeled
        # hop-indexed and tagged indirect for the checker.
        assert fallback.kind == ROUTE_INDIRECT
        assert fallback.vcs == tuple(range(len(fallback.routers) - 1))

    def test_fail_refill_recover_cycle_restores_pristine(self, cache, sf5):
        u, v = _link(sf5)
        pristine = cache.minimal_fill(u, v)
        cache.fail_link(u, v)
        degraded = cache.minimal_fill(u, v)
        assert degraded != pristine
        cache.restore_link(u, v)
        # Rows touched while degraded are re-nulled; the refill comes
        # straight from the unpolluted pristine memo (same object).
        assert cache.minimal_rows[u][v] is None
        assert cache.minimal_fill(u, v) is cache.minimal_candidates(u, v)
        assert cache.minimal_fill(u, v) == pristine
        # A second fail cycle behaves identically.
        cache.fail_link(u, v)
        assert cache.minimal_fill(u, v) == degraded
        cache.restore_link(u, v)
        assert cache.minimal_fill(u, v) == pristine

    def test_leg_rows_participate_in_invalidation(self, cache, sf5):
        u, v = _link(sf5)
        cache.leg_fill(u, v)
        cache.fail_link(u, v)
        assert cache.leg_rows[u][v] is None
        (leg,) = cache.leg_fill(u, v)
        assert len(leg) >= 3
        cache.restore_link(u, v)
        assert cache.leg_fill(u, v) == ((u, v),)

    def test_disconnected_destination_raises_noroute(self, cache, sf5):
        target = min(sf5.neighbors(0))
        for nbr in sf5.neighbors(target):
            cache.fail_link(target, nbr)
        with pytest.raises(NoRouteError):
            cache.minimal_fill(0, target)

    def test_runtime_vc_limit_bounds_fallback(self, sf5):
        # With runtime_vcs pinned below the detour length, the fallback
        # must refuse rather than emit unbufferable VC labels.
        cache = RouteCache(sf5, safe_vc_policy(sf5))
        cache.runtime_vcs = 2
        u, v = _link(sf5)
        cache.fail_link(u, v)
        with pytest.raises(NoRouteError):
            cache.minimal_fill(u, v)


# ---------------------------------------------------------------------------
# Degraded-topology legality (validate + CDG) and serialisation.
# ---------------------------------------------------------------------------


class TestDegradedLegality:
    def test_degraded_sf_stays_structurally_valid(self, sf5):
        deg = degrade(sf5, links=[_link(sf5)])
        report = validate_topology(deg, expect_uniform_radix=False,
                                   check_diameter=False)
        assert report.ok, str(report)

    def test_degraded_minimal_cdg_is_acyclic_under_safe_policy(self, sf5):
        deg = degrade(sf5, links=[_link(sf5)])
        policy = safe_vc_policy(deg)
        assert policy.num_vcs_minimal >= deg.endpoint_diameter()
        assert find_cycle(build_cdg_minimal(deg, policy)) is None

    def test_conformance_fault_schedule_is_cdg_safe(self):
        # The exact degraded adjacency the fault golden simulates under
        # (both drip links down at quiesce) must be deadlock-free.
        topo_key = conformance.FAULT_CASE_KEY.partition("/")[0]
        cfg = {c.key: c
               for c in conformance.configs_for_scale(conformance.SCALE)}[topo_key]
        topo = cfg.topology()
        sched = FaultSchedule(conformance.fault_specs(topo))
        failed = set()
        for ev in sched.expand(topo):
            if ev.kind == "fail":
                failed.update(ev.links)
            else:
                failed.difference_update(ev.links)
        deg = DegradedTopology(topo, sorted(failed))
        policy = safe_vc_policy(deg, uses_indirect=True)
        assert find_cycle(build_cdg_minimal(deg, policy)) is None


class TestSerializeDegraded:
    def test_round_trip_through_dict(self, sf5):
        e = _link(sf5)
        deg = degrade(sf5, links=[e])
        clone = topology_from_dict(json.loads(json.dumps(topology_to_dict(deg))))
        assert isinstance(clone, DegradedTopology)
        assert clone.failed_links == [e]
        assert clone.num_routers == deg.num_routers
        for r in range(deg.num_routers):
            assert clone.neighbors(r) == deg.neighbors(r)
            assert clone.base.neighbors(r) == sf5.neighbors(r)
            assert clone.nodes_attached(r) == deg.nodes_attached(r)

    def test_round_trip_preserves_structural_hooks(self, sf5):
        deg = degrade(sf5, fraction=0.05, seed=3)
        clone = topology_from_dict(topology_to_dict(deg))
        assert clone.failed_links == deg.failed_links
        assert clone.valiant_intermediates() == deg.valiant_intermediates()
        u, v = _link(sf5)
        assert clone.link_class(u, v) == deg.link_class(u, v)

    def test_save_load_file(self, sf5, tmp_path):
        deg = degrade(sf5, links=[_link(sf5)])
        path = tmp_path / "deg.json"
        save_topology(deg, path)
        loaded = load_topology(path)
        assert isinstance(loaded, DegradedTopology)
        assert loaded.failed_links == deg.failed_links


# ---------------------------------------------------------------------------
# Cache keying: fault-bearing runs never alias fault-free ones.
# ---------------------------------------------------------------------------


def _job(**config_overrides) -> Job:
    return Job(
        kind="workload",
        topology="sf:q=5,p=floor",
        routing="ugal",
        pattern="ring-allreduce",
        pattern_kwargs={"message_bytes": 512},
        seed=0,
        config=sim_config_dict(SimConfig(**config_overrides)),
    )


class TestFaultHashSeparation:
    def test_fault_fields_change_the_content_hash(self):
        plain = _job().content_hash()
        failed = _job(faults=("fail@600:0-1",)).content_hash()
        other = _job(faults=("fail@700:0-1",)).content_hash()
        dropped = _job(faults=("fail@600:0-1",),
                       fault_policy="drop").content_hash()
        assert len({plain, failed, other, dropped}) == 4

    def test_hash_survives_json_round_trip(self):
        job = _job(faults=("fail@600:0-1", "recover@900:0-1"))
        clone = Job.from_dict(json.loads(json.dumps(job.to_dict())))
        assert clone == job
        assert clone.content_hash() == job.content_hash()
        assert clone.sim_config().faults == ("fail@600:0-1", "recover@900:0-1")

    def test_serve_accepts_fault_bearing_config(self):
        body = _job(faults=("fail@600:0-1",)).to_dict()
        job = job_from_request(body)
        assert job.sim_config().faults == ("fail@600:0-1",)
        assert job.content_hash() == _job(faults=("fail@600:0-1",)).content_hash()

    def test_coalescer_keeps_faulted_runs_distinct(self):
        coalescer = Coalescer()
        plain, faulted = _job(), _job(faults=("fail@600:0-1",))
        coalescer.register(Execution(id="e1", job=plain,
                                     key=plain.content_hash(), owner="t"))
        assert coalescer.lookup(faulted.content_hash()) is None
        coalescer.register(Execution(id="e2", job=faulted,
                                     key=faulted.content_hash(), owner="t"))
        assert len(coalescer) == 2
        assert coalescer.lookup(plain.content_hash()).id == "e1"
        assert coalescer.lookup(faulted.content_hash()).id == "e2"


# ---------------------------------------------------------------------------
# Fault-aware simulation: arming rules, cross-backend workload
# equality, degradation stretch, drop-policy accounting.
# ---------------------------------------------------------------------------


class TestFaultSimulation:
    def test_legacy_routing_cannot_be_armed(self, sf5):
        u, v = _link(sf5)
        cfg = SimConfig(faults=(f"fail@100:{u}-{v}",))
        net = Network(sf5, MinimalRouting(sf5, compiled=False, seed=0), cfg)
        workload = build_workload("ring-allreduce", sf5.num_nodes, 256, ranks=4)
        with pytest.raises(ValueError, match="compiled"):
            net.run_workload(workload)

    @staticmethod
    def _run_collective(topo, faults=(), backend="object", check=True):
        cfg = SimConfig(check=check, backend=backend, faults=faults)
        return run_workload(
            topo,
            lambda t, s: UGALRouting(t, seed=s),
            build_workload("ring-allreduce", topo.num_nodes, 512, ranks=16),
            seed=0,
            config=cfg,
        )

    def test_mid_collective_failure_cross_backend_and_stretch(self, sf5):
        u, v = _link(sf5)
        faults = (f"fail@2000:{u}-{v}", f"recover@9000:{u}-{v}")
        baseline = self._run_collective(sf5, check=False)
        obj = self._run_collective(sf5, faults, backend="object")
        bat = self._run_collective(sf5, faults, backend="batched")
        # Both checked backends agree on every observable of the
        # degraded run -- completion time, packet count and the fault
        # counters -- and the checker stayed clean (it raises on any
        # violation).
        for key in ("completion_ns", "packets", "messages",
                    "fault_events", "fault_reroutes", "fault_dropped",
                    "first_fault_ns"):
            assert obj[key] == bat[key], key
        assert obj["fault_events"] >= 1
        assert obj["first_fault_ns"] == pytest.approx(2000.0)
        # Losing a link mid-collective can only slow completion down.
        stretch = obj["completion_ns"] / baseline["completion_ns"]
        assert stretch >= 1.0
        assert obj["packets"] == baseline["packets"]  # nothing lost

    def test_drop_policy_accounts_for_lost_packets(self):
        # The conformance fault case under policy="drop": packets bound
        # for the dead links are counted lost instead of rerouted, and
        # the checked run's conservation law (delivered + in_flight +
        # dropped) holds to quiescence on both backends.
        obj = conformance.run_fault_case(check=True, policy="drop")
        bat = conformance.run_fault_case(check=True, backend="batched",
                                         policy="drop")
        assert obj["faults"]["dropped"] > 0
        assert obj["faults"]["reroutes"] == 0
        assert obj["digest"] == bat["digest"]
        assert obj["faults"] == bat["faults"]
        assert obj["delivered"] == bat["delivered"]
