"""Unit tests for the two-level Orthogonal Fat-Tree (Sec. 2.2.4)."""

import pytest

from repro.topology import OFT
from repro.topology.base import LINK_DOWN, LINK_UP
from repro.topology.validate import validate_topology


class TestCounts:
    @pytest.mark.parametrize("k", [3, 4, 6, 8])
    def test_formulas(self, k):
        t = OFT(k)
        assert t.num_nodes == OFT.expected_num_nodes(k) == 2 * k**3 - 2 * k**2 + 2 * k
        assert t.num_routers == OFT.expected_num_routers(k) == 3 * (k * k - k + 1)
        assert t.rl == 1 + k * (k - 1)

    @pytest.mark.parametrize("k", [3, 4, 6])
    def test_uniform_radix_2k(self, k):
        t = OFT(k)
        assert {t.radix(r) for r in range(t.num_routers)} == {2 * k}

    def test_paper_configuration_k12(self):
        t = OFT(12)
        assert (t.num_nodes, t.num_routers, t.max_radix()) == (3192, 399, 24)

    @pytest.mark.parametrize("k", [3, 4, 6])
    def test_cost_exactly_3_and_2(self, k):
        t = OFT(k)
        assert t.ports_per_node() == pytest.approx(3.0)
        assert t.links_per_node() == pytest.approx(2.0)

    @pytest.mark.parametrize("k", [3, 4, 6])
    def test_validates(self, k):
        report = validate_topology(OFT(k))
        assert report.ok, report.problems

    def test_rejects_invalid_k(self):
        with pytest.raises(ValueError):
            OFT(7)  # 6 is not a prime power
        with pytest.raises(ValueError):
            OFT(2)

    def test_prime_power_extension(self):
        # k - 1 = 4 = 2^2: beyond the paper's prime-only construction.
        t = OFT(5)
        assert t.num_nodes == OFT.expected_num_nodes(5) == 210
        assert t.endpoint_diameter() == 2

    def test_custom_p(self):
        t = OFT(4, p=2)
        assert t.num_nodes == 2 * 2 * t.rl
        with pytest.raises(ValueError):
            OFT(4, p=-1)


class TestStructure:
    def test_levels(self, oft4):
        rl = oft4.rl
        assert oft4.level(0) == OFT.LEVEL_L0
        assert oft4.level(rl) == OFT.LEVEL_L1
        assert oft4.level(2 * rl) == OFT.LEVEL_L2

    def test_l1_has_no_nodes(self, oft4):
        rl = oft4.rl
        for r in range(rl, 2 * rl):
            assert oft4.nodes_attached(r) == 0

    def test_l0_l2_have_k_nodes(self, oft4):
        rl, k = oft4.rl, oft4.k
        for r in list(range(rl)) + list(range(2 * rl, 3 * rl)):
            assert oft4.nodes_attached(r) == k

    def test_wiring_follows_ml3b_rows(self, oft4):
        rl = oft4.rl
        for i in range(rl):
            expected = {rl + int(j) for j in oft4.table[i]}
            assert set(oft4.neighbors(i)) == expected
            assert set(oft4.neighbors(2 * rl + i)) == expected

    def test_l1_connects_only_to_l0_l2(self, oft4):
        rl = oft4.rl
        for j in range(rl, 2 * rl):
            for n in oft4.neighbors(j):
                assert oft4.level(n) in (OFT.LEVEL_L0, OFT.LEVEL_L2)

    def test_endpoint_diameter_two(self, oft4):
        assert oft4.endpoint_diameter() == 2

    def test_symmetric_counterpart(self, oft4):
        rl = oft4.rl
        assert oft4.symmetric_counterpart(0) == 2 * rl
        assert oft4.symmetric_counterpart(2 * rl) == 0
        with pytest.raises(ValueError):
            oft4.symmetric_counterpart(rl)  # L1 router

    def test_symmetric_pairs_share_all_k_neighbors(self, oft4):
        for i in range(oft4.rl):
            mirror = oft4.symmetric_counterpart(i)
            assert len(oft4.common_neighbors(i, mirror)) == oft4.k

    def test_non_symmetric_pairs_share_one_neighbor(self, oft4):
        rl = oft4.rl
        # L0-L0 pairs (distinct) and non-mirrored L0-L2 pairs share
        # exactly one L1 router (the SPT single-path property).
        assert len(oft4.common_neighbors(0, 1)) == 1
        assert len(oft4.common_neighbors(0, 2 * rl + 1)) == 1

    def test_index_in_level(self, oft4):
        rl = oft4.rl
        assert oft4.index_in_level(0) == 0
        assert oft4.index_in_level(rl + 3) == 3
        assert oft4.index_in_level(2 * rl + 5) == 5


class TestLinkClasses:
    def test_up_toward_l1(self, oft4):
        rl = oft4.rl
        l0, l1 = 0, oft4.neighbors(0)[0]
        assert oft4.level(l1) == OFT.LEVEL_L1
        assert oft4.link_class(l0, l1) == LINK_UP
        assert oft4.link_class(l1, l0) == LINK_DOWN
        l2 = 2 * rl
        l1b = oft4.neighbors(l2)[0]
        assert oft4.link_class(l2, l1b) == LINK_UP
        assert oft4.link_class(l1b, l2) == LINK_DOWN

    def test_valiant_intermediates_are_l0_l2(self, oft4):
        rl = oft4.rl
        expected = list(range(rl)) + list(range(2 * rl, 3 * rl))
        assert oft4.valiant_intermediates() == expected
