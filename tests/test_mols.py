"""Unit and property tests for repro.maths.mols (Latin squares / MOLS)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.maths.mols import (
    are_orthogonal,
    galois_latin_square,
    is_latin_square,
    latin_square,
    mols_prime,
    mols_prime_power,
)

PRIMES = [2, 3, 5, 7, 11]


class TestLatinSquare:
    def test_order_3_a_1(self):
        expected = np.array([[0, 1, 2], [1, 2, 0], [2, 0, 1]])
        assert np.array_equal(latin_square(3, 1), expected)

    def test_is_latin_for_invertible_a(self):
        for n in PRIMES:
            for a in range(1, n):
                assert is_latin_square(latin_square(n, a))

    def test_a_zero_not_latin_for_n_gt_1(self):
        assert not is_latin_square(latin_square(3, 0))

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            latin_square(0, 1)

    def test_order_one(self):
        assert np.array_equal(latin_square(1, 0), np.array([[0]]))


class TestMolsPrime:
    def test_count(self):
        for n in PRIMES:
            assert len(mols_prime(n)) == n - 1

    def test_rejects_composite(self):
        with pytest.raises(ValueError):
            mols_prime(4)
        with pytest.raises(ValueError):
            mols_prime(6)

    def test_all_latin(self):
        for square in mols_prime(7):
            assert is_latin_square(square)

    def test_pairwise_orthogonal(self):
        for n in (3, 5, 7):
            family = mols_prime(n)
            for i in range(len(family)):
                for j in range(i + 1, len(family)):
                    assert are_orthogonal(family[i], family[j])


class TestPredicates:
    def test_is_latin_square_rejects_non_square(self):
        assert not is_latin_square(np.zeros((2, 3), dtype=int))

    def test_is_latin_square_rejects_repeats(self):
        assert not is_latin_square(np.array([[0, 1], [0, 1]]))

    def test_are_orthogonal_detects_self(self):
        sq = latin_square(3, 1)
        assert not are_orthogonal(sq, sq)

    def test_are_orthogonal_shape_mismatch(self):
        assert not are_orthogonal(latin_square(3, 1), latin_square(5, 1))


@given(st.sampled_from([3, 5, 7, 11]), st.data())
@settings(max_examples=40, deadline=None)
def test_property_rows_and_columns_are_permutations(n, data):
    a = data.draw(st.integers(1, n - 1))
    sq = latin_square(n, a)
    i = data.draw(st.integers(0, n - 1))
    assert sorted(sq[i, :]) == list(range(n))
    assert sorted(sq[:, i]) == list(range(n))


@given(st.sampled_from([3, 5, 7]), st.data())
@settings(max_examples=30, deadline=None)
def test_property_distinct_a_orthogonal(n, data):
    a = data.draw(st.integers(1, n - 1))
    b = data.draw(st.integers(1, n - 1))
    if a != b:
        assert are_orthogonal(latin_square(n, a), latin_square(n, b))


class TestMolsPrimePower:
    def test_count(self):
        for q in (4, 8, 9):
            assert len(mols_prime_power(q)) == q - 1

    def test_all_latin(self):
        for q in (4, 8, 9):
            for sq in mols_prime_power(q):
                assert is_latin_square(sq)

    def test_pairwise_orthogonal(self):
        for q in (4, 9):
            family = mols_prime_power(q)
            for i in range(len(family)):
                for j in range(i + 1, len(family)):
                    assert are_orthogonal(family[i], family[j])

    def test_rejects_non_prime_power(self):
        with pytest.raises(ValueError):
            mols_prime_power(6)

    def test_matches_modular_for_primes(self):
        for n in (3, 5, 7):
            for a in range(1, n):
                assert np.array_equal(galois_latin_square(n, a), latin_square(n, a))
