"""Protocol-level tests: the hand-rolled HTTP reader/writer and router.

These exercise the framing layer without a real socket — an
``asyncio.StreamReader`` fed by hand is indistinguishable from one
attached to a connection, which keeps the tests instant.
"""

from __future__ import annotations

import asyncio
import json

import pytest

from repro.serve.http import (
    HttpResponse,
    LengthRequired,
    MAX_BODY_BYTES,
    PayloadTooLarge,
    ProtocolError,
    StreamingResponse,
    error_response,
    json_response,
    read_request,
    write_response,
    write_streaming,
)
from repro.serve.models import ValidationError, is_content_hash
from repro.serve.router import MethodNotAllowed, NotFound, Router


def parse(raw: bytes):
    async def go():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        return await read_request(reader)

    return asyncio.run(go())


class _SinkWriter:
    """Just enough of StreamWriter to capture what was sent."""

    def __init__(self):
        self.chunks = []

    def write(self, data: bytes) -> None:
        self.chunks.append(data)

    async def drain(self) -> None:
        pass

    @property
    def data(self) -> bytes:
        return b"".join(self.chunks)


class TestReadRequest:
    def test_parses_get_with_query(self):
        req = parse(b"GET /v1/jobs?limit=5&full=1 HTTP/1.1\r\nHost: x\r\n\r\n")
        assert req.method == "GET"
        assert req.path == "/v1/jobs"
        assert req.query == {"limit": "5", "full": "1"}
        assert req.headers["host"] == "x"
        assert req.keep_alive is True

    def test_parses_post_body_by_content_length(self):
        body = json.dumps({"kind": "probe"}).encode()
        req = parse(
            b"POST /v1/jobs HTTP/1.1\r\n"
            + f"Content-Length: {len(body)}\r\n\r\n".encode()
            + body
        )
        assert req.json() == {"kind": "probe"}

    def test_percent_decoded_path(self):
        req = parse(b"GET /v1/jobs/r%2D000001 HTTP/1.1\r\n\r\n")
        assert req.path == "/v1/jobs/r-000001"

    def test_clean_eof_returns_none(self):
        assert parse(b"") is None

    def test_truncated_head_is_protocol_error(self):
        with pytest.raises(ProtocolError):
            parse(b"GET /v1/sta")

    def test_malformed_request_line(self):
        with pytest.raises(ProtocolError):
            parse(b"NONSENSE\r\n\r\n")

    def test_post_without_length_is_411(self):
        with pytest.raises(LengthRequired):
            parse(b"POST /v1/jobs HTTP/1.1\r\n\r\n")

    def test_oversized_body_is_413(self):
        with pytest.raises(PayloadTooLarge):
            parse(
                b"POST /v1/jobs HTTP/1.1\r\nContent-Length: "
                + str(MAX_BODY_BYTES + 1).encode()
                + b"\r\n\r\n"
            )

    def test_chunked_request_rejected(self):
        with pytest.raises(ProtocolError):
            parse(b"POST /v1/jobs HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")

    def test_bad_json_body_is_validation_error(self):
        req = parse(b"POST /x HTTP/1.1\r\nContent-Length: 4\r\n\r\n{ups")
        with pytest.raises(ValidationError):
            req.json()

    def test_connection_close_disables_keep_alive(self):
        req = parse(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        assert req.keep_alive is False


class TestWriteResponse:
    def test_json_response_framing(self):
        writer = _SinkWriter()
        asyncio.run(write_response(writer, json_response({"a": 1}), keep_alive=True))
        head, _, body = writer.data.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK")
        assert b"Content-Length: " in head
        assert b"Connection: keep-alive" in head
        assert json.loads(body) == {"a": 1}

    def test_error_response_carries_status(self):
        resp = error_response(429, "slow down")
        assert resp.status == 429
        assert json.loads(resp.body)["error"] == "slow down"

    def test_extra_headers_emitted(self):
        writer = _SinkWriter()
        resp = HttpResponse(status=405, headers={"Allow": "GET, POST"})
        asyncio.run(write_response(writer, resp, keep_alive=False))
        assert b"Allow: GET, POST" in writer.data
        assert b"Connection: close" in writer.data

    def test_streaming_is_chunked_ndjson(self):
        async def lines():
            yield json.dumps({"type": "a"})
            yield json.dumps({"type": "b"})

        writer = _SinkWriter()
        asyncio.run(write_streaming(writer, StreamingResponse(lines())))
        data = writer.data
        assert b"Transfer-Encoding: chunked" in data
        assert b"Connection: close" in data
        assert data.endswith(b"0\r\n\r\n")
        # Each NDJSON line is its own chunk, newline-terminated.
        body = data.partition(b"\r\n\r\n")[2]
        chunks = body.split(b"\r\n")
        payload = b"".join(chunks[1::2][:-1])  # sizes at even offsets
        events = [json.loads(l) for l in payload.decode().strip().split("\n")]
        assert [e["type"] for e in events] == ["a", "b"]


class TestRouter:
    def setup_method(self):
        self.router = Router()
        self.router.add("GET", "/v1/jobs/{id}", lambda: "get-job")
        self.router.add("GET", "/v1/jobs/{id}/events", lambda: "events")
        self.router.add("POST", "/v1/jobs", lambda: "submit")

    def test_static_and_param_match(self):
        handler, params = self.router.match("GET", "/v1/jobs/r-000001")
        assert handler() == "get-job"
        assert params == {"id": "r-000001"}
        handler, params = self.router.match("GET", "/v1/jobs/r-1/events")
        assert handler() == "events"

    def test_param_does_not_span_segments(self):
        with pytest.raises(NotFound):
            self.router.match("GET", "/v1/jobs/a/b/c")

    def test_unknown_path_is_404(self):
        with pytest.raises(NotFound):
            self.router.match("GET", "/v2/jobs")

    def test_wrong_method_is_405_with_allow(self):
        with pytest.raises(MethodNotAllowed) as exc:
            self.router.match("DELETE", "/v1/jobs/r-1")
        assert exc.value.allowed == ["GET"]
        assert exc.value.status == 405

    def test_method_match_is_case_insensitive(self):
        handler, _ = self.router.match("post", "/v1/jobs")
        assert handler() == "submit"


class TestContentHash:
    def test_accepts_sha256_hex(self):
        assert is_content_hash("0" * 64)
        assert is_content_hash("deadbeef" * 8)

    def test_rejects_everything_else(self):
        assert not is_content_hash("xyz")
        assert not is_content_hash("0" * 63)
        assert not is_content_hash("G" * 64)
