"""Tests for the multilevel graph partitioner and bisection bandwidth."""

import pytest

from repro.analysis.bisection import bisection_bandwidth
from repro.analysis.partition import Graph, bisect, cut_weight
from repro.topology import MLFM, OFT, SlimFly


def two_cliques(k=6, bridge=1):
    """Two k-cliques joined by `bridge` edges: optimal cut = bridge."""
    g = Graph(2 * k)
    for base in (0, k):
        for i in range(k):
            for j in range(i + 1, k):
                g.add_edge(base + i, base + j)
    for b in range(bridge):
        g.add_edge(b, k + b)
    return g


class TestGraph:
    def test_vertex_weights_default_one(self):
        g = Graph(3)
        assert g.total_vertex_weight == 3.0

    def test_weight_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Graph(3, [1.0, 2.0])

    def test_parallel_edges_accumulate(self):
        g = Graph(2)
        g.add_edge(0, 1, 1.0)
        g.add_edge(0, 1, 2.0)
        assert g.adj[0][1] == 3.0

    def test_self_loop_ignored(self):
        g = Graph(2)
        g.add_edge(1, 1)
        assert g.adj[1] == {}

    def test_from_topology_weights(self, mlfm4):
        g = Graph.from_topology(mlfm4)
        assert g.n == mlfm4.num_routers
        assert g.vwgt[0] == mlfm4.p
        assert g.vwgt[mlfm4.num_local_routers] == 0  # GRs carry no nodes


class TestCutWeight:
    def test_simple(self):
        g = Graph(3)
        g.add_edge(0, 1)
        g.add_edge(1, 2)
        assert cut_weight(g, [0, 0, 1]) == 1.0
        assert cut_weight(g, [0, 1, 0]) == 2.0
        assert cut_weight(g, [0, 0, 0]) == 0.0


class TestBisect:
    def test_two_cliques_optimal(self):
        result = bisect(two_cliques(), restarts=4, seed=0)
        assert result.cut == 1.0
        assert result.part_weights == (6.0, 6.0)

    def test_two_cliques_three_bridges(self):
        result = bisect(two_cliques(bridge=3), restarts=4, seed=0)
        assert result.cut == 3.0

    def test_balance_respected(self):
        result = bisect(two_cliques(), max_imbalance=0.05, restarts=4, seed=0)
        assert result.imbalance <= 1.05 + 1e-9

    def test_ring_cut_two(self):
        g = Graph(16)
        for i in range(16):
            g.add_edge(i, (i + 1) % 16)
        result = bisect(g, restarts=8, seed=0)
        assert result.cut == 2.0

    def test_rejects_tiny_graph(self):
        with pytest.raises(ValueError):
            bisect(Graph(1))

    def test_weighted_balance(self):
        # A path where one vertex carries most weight.
        g = Graph(4, [10.0, 1.0, 1.0, 10.0])
        for i in range(3):
            g.add_edge(i, i + 1)
        result = bisect(g, restarts=4, seed=0)
        # Must split between the two heavy ends.
        p = result.parts
        assert p[0] != p[3]

    def test_deterministic_given_seed(self):
        g = two_cliques()
        a = bisect(g, restarts=3, seed=5)
        b = bisect(g, restarts=3, seed=5)
        assert a.cut == b.cut and a.parts == b.parts


class TestBisectionBandwidth:
    def test_oft3_exact_optimum(self, oft3):
        # Brute-force verified optimum for OFT(3): cut 13 (see the
        # partitioner development notes); the multilevel heuristic must
        # find it.
        bb = bisection_bandwidth(oft3, restarts=16, seed=1)
        assert bb.cut_links == 13.0
        assert bb.per_node == pytest.approx(13 / 21)

    def test_paper_fig4_ordering_small(self):
        # Fig. 4 orderings that already hold at small scale: SF with
        # p=floor beats p=ceil (same cut, fewer nodes per router), and
        # MLFM trends lowest.
        sf_floor = bisection_bandwidth(SlimFly(7, "floor"), restarts=6, seed=1)
        sf_ceil = bisection_bandwidth(SlimFly(7, "ceil"), restarts=6, seed=1)
        mlfm = bisection_bandwidth(MLFM(7), restarts=6, seed=1)
        assert sf_floor.per_node > sf_ceil.per_node
        assert mlfm.per_node < sf_floor.per_node

    def test_sf7_near_paper_value(self):
        # Paper: ~0.71 b/node for SF with p = floor.
        bb = bisection_bandwidth(SlimFly(7, "floor"), restarts=6, seed=1)
        assert 0.6 <= bb.per_node <= 0.8

    def test_split_balanced_by_nodes(self, sf5):
        bb = bisection_bandwidth(sf5, restarts=4, seed=1)
        lo, hi = sorted(bb.node_split)
        assert hi / lo <= 1.12
