"""Unit and property tests for repro.maths.galois (GF(p^n) arithmetic)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.maths.galois import GaloisField, get_field

FIELD_ORDERS = [2, 3, 4, 5, 7, 8, 9, 11, 13, 16, 25, 27]


@pytest.fixture(scope="module", params=FIELD_ORDERS)
def field(request):
    return get_field(request.param)


class TestConstruction:
    def test_rejects_non_prime_power(self):
        for q in (1, 6, 10, 12, 15):
            with pytest.raises(ValueError):
                GaloisField(q)

    def test_prime_field_attributes(self):
        f = GaloisField(13)
        assert (f.q, f.p, f.n) == (13, 13, 1)

    def test_extension_field_attributes(self):
        f = GaloisField(9)
        assert (f.q, f.p, f.n) == (9, 3, 2)
        f = GaloisField(8)
        assert (f.q, f.p, f.n) == (8, 2, 3)

    def test_elements_enumeration(self, field):
        assert list(field.elements()) == list(range(field.q))


class TestFieldAxioms:
    """Exhaustive verification of the field axioms on every small field."""

    def test_additive_identity(self, field):
        for a in field.elements():
            assert field.add(a, 0) == a

    def test_additive_inverse(self, field):
        for a in field.elements():
            assert field.add(a, field.neg(a)) == 0

    def test_addition_commutes(self, field):
        q = field.q
        for a in range(q):
            for b in range(a, q):
                assert field.add(a, b) == field.add(b, a)

    def test_multiplicative_identity(self, field):
        for a in field.elements():
            assert field.mul(a, 1) == a

    def test_multiplication_commutes(self, field):
        q = field.q
        for a in range(q):
            for b in range(a, q):
                assert field.mul(a, b) == field.mul(b, a)

    def test_multiplicative_inverse(self, field):
        for a in range(1, field.q):
            assert field.mul(a, field.inv(a)) == 1

    def test_zero_has_no_inverse(self, field):
        with pytest.raises(ZeroDivisionError):
            field.inv(0)

    def test_distributivity(self, field):
        # Sampled triples (full cube is q^3; keep it cheap but broad).
        q = field.q
        step = max(1, q // 5)
        for a in range(0, q, step):
            for b in range(0, q, step):
                for c in range(0, q, step):
                    left = field.mul(a, field.add(b, c))
                    right = field.add(field.mul(a, b), field.mul(a, c))
                    assert left == right

    def test_associativity_of_multiplication(self, field):
        q = field.q
        step = max(1, q // 5)
        for a in range(0, q, step):
            for b in range(0, q, step):
                for c in range(0, q, step):
                    assert field.mul(field.mul(a, b), c) == field.mul(a, field.mul(b, c))

    def test_no_zero_divisors(self, field):
        for a in range(1, field.q):
            for b in range(1, field.q):
                assert field.mul(a, b) != 0


class TestPrimitiveElement:
    def test_generates_multiplicative_group(self, field):
        xi = field.primitive_element
        seen = set()
        acc = 1
        for _ in range(field.q - 1):
            seen.add(acc)
            acc = field.mul(acc, xi)
        assert seen == set(range(1, field.q))
        assert acc == 1  # order exactly q-1

    def test_element_order_divides_group_order(self, field):
        for a in range(1, field.q):
            order = field.element_order(a)
            assert (field.q - 1) % order == 0
            assert field.pow(a, order) == 1

    def test_primitive_has_full_order(self, field):
        assert field.element_order(field.primitive_element) == field.q - 1


class TestArithmeticOps:
    def test_sub_is_add_neg(self, field):
        q = field.q
        for a in range(0, q, max(1, q // 7)):
            for b in range(q):
                assert field.sub(a, b) == field.add(a, field.neg(b))

    def test_div(self, field):
        for a in range(field.q):
            for b in range(1, field.q):
                assert field.mul(field.div(a, b), b) == a

    def test_pow_zero(self, field):
        for a in field.elements():
            assert field.pow(a, 0) == 1 if a != 0 else field.pow(a, 0) == 1

    def test_pow_matches_repeated_mul(self, field):
        for a in range(1, field.q):
            acc = 1
            for e in range(5):
                assert field.pow(a, e) == acc
                acc = field.mul(acc, a)

    def test_pow_negative_exponent(self, field):
        for a in range(1, field.q):
            assert field.mul(field.pow(a, -1), a) == 1

    def test_pow_zero_base_negative_exponent(self, field):
        with pytest.raises(ZeroDivisionError):
            field.pow(0, -1)

    def test_range_checks(self, field):
        with pytest.raises(ValueError):
            field.add(0, field.q)
        with pytest.raises(ValueError):
            field.mul(-1, 0)


class TestCoefficients:
    def test_roundtrip(self, field):
        for a in field.elements():
            assert field.element_from_coefficients(field.coefficients(a)) == a

    def test_bad_vector_rejected(self):
        f = GaloisField(9)
        with pytest.raises(ValueError):
            f.element_from_coefficients((3, 0))  # digit out of range
        with pytest.raises(ValueError):
            f.element_from_coefficients((0,))  # wrong length

    def test_addition_is_coefficientwise(self):
        f = GaloisField(27)
        for a in range(0, 27, 5):
            for b in range(0, 27, 7):
                ca, cb = f.coefficients(a), f.coefficients(b)
                expected = tuple((x + y) % 3 for x, y in zip(ca, cb))
                assert f.coefficients(f.add(a, b)) == expected


class TestGetField:
    def test_memoised(self):
        assert get_field(13) is get_field(13)


@given(st.sampled_from(FIELD_ORDERS), st.data())
@settings(max_examples=60, deadline=None)
def test_random_triples_satisfy_field_laws(q, data):
    f = get_field(q)
    a = data.draw(st.integers(0, q - 1))
    b = data.draw(st.integers(0, q - 1))
    c = data.draw(st.integers(0, q - 1))
    assert f.add(f.add(a, b), c) == f.add(a, f.add(b, c))
    assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))
    if b != 0:
        assert f.mul(f.div(a, b), b) == a
