"""Tests for indirect random (Valiant) routing (Sec. 3.2)."""

import pytest

from repro.routing import IndirectRandomRouting, compose_indirect
from repro.routing.base import ROUTE_INDIRECT, ROUTE_MINIMAL


class TestCompose:
    def test_joins_legs(self):
        routers, idx = compose_indirect((0, 3, 7), (7, 2, 9))
        assert routers == (0, 3, 7, 2, 9)
        assert idx == 2

    def test_rejects_mismatched_legs(self):
        with pytest.raises(ValueError):
            compose_indirect((0, 3), (4, 5))

    def test_one_hop_legs(self):
        routers, idx = compose_indirect((0, 7), (7, 9))
        assert routers == (0, 7, 9) and idx == 1


class TestIndirectRouting:
    def test_kind_and_intermediate(self, sf5):
        ir = IndirectRandomRouting(sf5, seed=1)
        r = ir.route(0, 30)
        assert r.kind == ROUTE_INDIRECT
        assert r.intermediate is not None
        assert r.routers[r.intermediate] not in (0, 30)

    def test_intra_router_short_circuit(self, mlfm4):
        ir = IndirectRandomRouting(mlfm4, seed=1)
        r = ir.route(5, 5)
        assert r.routers == (5,) and r.kind == ROUTE_MINIMAL

    def test_sf_hop_range(self, sf5):
        ir = IndirectRandomRouting(sf5, seed=2)
        hops = {ir.route(0, 30).num_hops for _ in range(200)}
        # Sec. 3.2: SF indirect routes have 2, 3 or 4 hops.
        assert hops <= {2, 3, 4}
        assert 4 in hops

    def test_mlfm_always_four_hops(self, mlfm4):
        ir = IndirectRandomRouting(mlfm4, seed=2)
        eps = mlfm4.endpoint_routers()
        for _ in range(100):
            r = ir.route(eps[0], eps[-1])
            assert r.num_hops == 4

    def test_oft_always_four_hops(self, oft4):
        ir = IndirectRandomRouting(oft4, seed=2)
        eps = oft4.endpoint_routers()
        for _ in range(100):
            assert ir.route(eps[0], eps[-1]).num_hops == 4

    def test_mlfm_intermediates_are_local_routers(self, mlfm4):
        ir = IndirectRandomRouting(mlfm4, seed=2)
        for _ in range(100):
            r = ir.route(0, 7)
            assert mlfm4.is_local(r.routers[r.intermediate])

    def test_vc_phases(self, mlfm4):
        ir = IndirectRandomRouting(mlfm4, seed=2)
        r = ir.route(0, 7)
        # VC 0 up to the intermediate, VC 1 afterwards (Sec. 3.4).
        for h in range(r.num_hops):
            expected = 0 if h < r.intermediate else 1
            assert r.vcs[h] == expected

    def test_sf_vcs_hop_indexed(self, sf5):
        ir = IndirectRandomRouting(sf5, seed=2)
        r = ir.route(0, 30)
        assert r.vcs == tuple(range(r.num_hops))

    def test_num_vcs(self, sf5, mlfm4):
        assert IndirectRandomRouting(sf5, seed=1).num_vcs == 4
        assert IndirectRandomRouting(mlfm4, seed=1).num_vcs == 2

    def test_intermediate_never_src_or_dst(self, sf5):
        ir = IndirectRandomRouting(sf5, seed=3)
        for _ in range(300):
            assert ir.pick_intermediate(4, 9) not in (4, 9)

    def test_intermediates_cover_pool(self, mlfm4):
        ir = IndirectRandomRouting(mlfm4, seed=3)
        seen = {ir.pick_intermediate(0, 7) for _ in range(500)}
        pool = set(mlfm4.valiant_intermediates()) - {0, 7}
        assert seen == pool

    def test_explicit_intermediates(self, sf5):
        ir = IndirectRandomRouting(sf5, seed=1, intermediates=[10, 11, 12])
        for _ in range(50):
            assert ir.pick_intermediate(0, 30) in {10, 11, 12}

    def test_rejects_tiny_pool(self, sf5):
        with pytest.raises(ValueError):
            IndirectRandomRouting(sf5, intermediates=[1, 2])

    def test_route_via_explicit(self, mlfm4):
        ir = IndirectRandomRouting(mlfm4, seed=1)
        r = ir.route_via(0, 7, 12)
        assert r.routers[r.intermediate] == 7
        assert r.routers[0] == 0 and r.routers[-1] == 12
