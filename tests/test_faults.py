"""Tests for link-failure resilience analysis (repro.analysis.faults)."""

import pytest

from repro.analysis.faults import DegradedTopology, degrade, fault_resilience
from repro.topology import MLFM, OFT, SlimFly
from repro.topology.base import LINK_UP


class TestDegrade:
    def test_removes_exact_links(self, sf5):
        victim = next(iter(sf5.edges()))
        deg = degrade(sf5, links=[victim])
        assert not deg.is_edge(*victim)
        assert deg.num_router_links == sf5.num_router_links - 1

    def test_fraction_removes_count(self, sf5):
        deg = degrade(sf5, fraction=0.10, seed=3)
        expected = sf5.num_router_links - round(0.10 * sf5.num_router_links)
        assert deg.num_router_links == expected

    def test_rejects_both_or_neither(self, sf5):
        with pytest.raises(ValueError):
            degrade(sf5)
        with pytest.raises(ValueError):
            degrade(sf5, fraction=0.1, links=[(0, 1)])

    def test_rejects_nonexistent_link(self, sf5):
        non_edge = None
        for b in range(1, sf5.num_routers):
            if not sf5.is_edge(0, b):
                non_edge = (0, b)
                break
        with pytest.raises(ValueError):
            degrade(sf5, links=[non_edge])

    def test_rejects_bad_fraction(self, sf5):
        with pytest.raises(ValueError):
            degrade(sf5, fraction=1.0)

    def test_nodes_preserved(self, mlfm4):
        deg = degrade(mlfm4, fraction=0.05, seed=1)
        assert deg.num_nodes == mlfm4.num_nodes
        assert deg.nodes_of(0) == mlfm4.nodes_of(0)

    def test_link_class_delegated(self, mlfm4):
        deg = degrade(mlfm4, fraction=0.05, seed=1)
        lr = 0
        gr = deg.neighbors(lr)[0]
        assert deg.link_class(lr, gr) == LINK_UP

    def test_valiant_pool_delegated(self, mlfm4):
        deg = degrade(mlfm4, fraction=0.05, seed=1)
        assert deg.valiant_intermediates() == mlfm4.valiant_intermediates()

    def test_deterministic(self, sf5):
        a = degrade(sf5, fraction=0.1, seed=9)
        b = degrade(sf5, fraction=0.1, seed=9)
        assert a.failed_links == b.failed_links


class TestDegradedBehaviour:
    def test_diameter_grows_under_failures(self, oft4):
        deg = degrade(oft4, fraction=0.15, seed=2)
        # Endpoint diameter can only grow (or the graph disconnects).
        try:
            assert deg.endpoint_diameter() >= 2
        except ValueError:
            pass  # disconnection is a legal outcome at 15% failures

    def test_minimal_routing_still_works(self, sf5):
        from repro.routing.paths import MinimalPaths

        deg = degrade(sf5, fraction=0.05, seed=4)
        mp = MinimalPaths(deg)
        eps = deg.endpoint_routers()
        for d in eps[1:10]:
            path = mp.paths(eps[0], d)[0]
            for u, v in zip(path[:-1], path[1:]):
                assert deg.is_edge(u, v)

    def test_simulation_on_degraded_sf(self):
        # safe_vc_policy sizes the hop-indexed VC budget to the degraded
        # diameter, so simulation works even with longer minimal paths.
        from repro.analysis.faults import safe_vc_policy
        from repro.routing import MinimalRouting
        from repro.sim import Network
        from repro.traffic import UniformRandom

        sf = SlimFly(5)
        deg = degrade(sf, fraction=0.05, seed=11)
        net = Network(deg, MinimalRouting(deg, vc_policy=safe_vc_policy(deg), seed=1))
        stats = net.run_synthetic(
            UniformRandom(deg.num_nodes), load=0.3,
            warmup_ns=500, measure_ns=1500, seed=3, drain=True,
        )
        assert stats.throughput == pytest.approx(0.3, rel=0.15)
        assert net.stats.injected_total == net.stats.ejected_total

    def test_safe_vc_policy_budgets(self):
        from repro.analysis.faults import safe_vc_policy

        sf = SlimFly(5)
        pol = safe_vc_policy(sf)
        assert pol.num_vcs_minimal == 2 and pol.num_vcs_indirect == 4
        deg = degrade(sf, fraction=0.15, seed=3)
        try:
            diameter = deg.endpoint_diameter()
        except ValueError:
            return  # disconnected draw: nothing to size
        pol = safe_vc_policy(deg)
        assert pol.num_vcs_minimal >= diameter

    def test_minimal_vc_budget_violation_is_informative(self):
        from repro.routing.vc import HopIndexVC

        with pytest.raises(ValueError, match="exceeds"):
            HopIndexVC(minimal_vcs=2).assign((0, 1, 2, 3), None)
        with pytest.raises(ValueError):
            HopIndexVC(minimal_vcs=0)


class TestResilienceSweep:
    def test_zero_failures_baseline(self, oft4):
        trials = fault_resilience(oft4, fractions=(0.0,), trials=2, seed=1)
        t = trials[0]
        assert t.connected_fraction == 1.0
        assert t.mean_endpoint_diameter == 2.0

    def test_degradation_monotone_in_connectivity(self, mlfm4):
        trials = fault_resilience(
            mlfm4, fractions=(0.0, 0.3), trials=3, seed=2, diversity_samples=30
        )
        assert trials[0].connected_fraction >= trials[1].connected_fraction

    def test_diversity_reported(self, mlfm4):
        # Mean diversity stays positive while connected.  (It is NOT
        # monotone in the failure rate: pairs pushed beyond distance 2
        # can gain shortest-path multiplicity.)
        trials = fault_resilience(
            mlfm4, fractions=(0.0, 0.2), trials=3, seed=2, diversity_samples=50
        )
        for t in trials:
            if t.connected_fraction > 0:
                assert t.mean_diversity >= 1.0
