"""Tests for ASCII report rendering."""

import pytest

from repro.experiments.report import ascii_table, format_value, series_table


class TestFormatValue:
    def test_float_precision(self):
        assert format_value(0.123456) == "0.123"
        assert format_value(0.123456, precision=1) == "0.1"

    def test_none_blank(self):
        assert format_value(None) == ""

    def test_bool_and_int(self):
        assert format_value(True) == "True"
        assert format_value(42) == "42"

    def test_string_passthrough(self):
        assert format_value("abc") == "abc"


class TestAsciiTable:
    def test_alignment(self):
        out = ascii_table(["a", "long_header"], [[1, 2], [333, 4]])
        lines = out.split("\n")
        assert len({len(l) for l in lines}) == 1  # rectangular
        assert "long_header" in lines[0]

    def test_title(self):
        out = ascii_table(["x"], [[1]], title="My Table")
        assert out.startswith("My Table")

    def test_rejects_ragged_rows(self):
        with pytest.raises(ValueError):
            ascii_table(["a", "b"], [[1]])

    def test_empty_rows_ok(self):
        out = ascii_table(["a"], [])
        assert "a" in out


class TestSeriesTable:
    def test_shape(self):
        out = series_table("load", [0.1, 0.2], {"thr": [0.1, 0.19], "lat": [100, 200]})
        lines = out.split("\n")
        assert len(lines) == 4  # header + separator + 2 rows
        assert "thr" in lines[0] and "lat" in lines[0]
