"""Tests for the generic SPT/SSPT class (Sec. 2.2.2) -- including the
isomorphism proofs that MLFM and OFT are SSPT instances."""

import networkx as nx
import numpy as np
import pytest

from repro.topology import MLFM, OFT, SSPT, spt_incidence, verify_spt_incidence
from repro.topology.base import LINK_DOWN, LINK_UP
from repro.topology.validate import validate_topology


class TestIncidence:
    @pytest.mark.parametrize("r1,r2", [(3, 2), (4, 2), (5, 2), (7, 2), (4, 4), (6, 6), (8, 8)])
    def test_valid_constructions(self, r1, r2):
        table = spt_incidence(r1, r2)
        assert verify_spt_incidence(table, r1, r2) == []

    def test_shape(self):
        table = spt_incidence(5, 2)
        assert table.shape == (6, 5)  # R1 = 1 + 5*1
        table = spt_incidence(4, 4)
        assert table.shape == (13, 4)  # R1 = 1 + 4*3

    def test_rejects_unknown_construction(self):
        with pytest.raises(ValueError):
            spt_incidence(4, 8)  # r2 not in {2, r1}
        with pytest.raises(ValueError):
            spt_incidence(7, 7)  # r1 - 1 = 6 not a prime power

    def test_rejects_tiny_radix(self):
        with pytest.raises(ValueError):
            spt_incidence(1, 2)

    def test_verifier_detects_corruption(self):
        table = spt_incidence(4, 4).copy()
        a, b = int(table[1, 1]), int(table[4, 2])
        table[1, 1], table[4, 2] = b, a
        assert verify_spt_incidence(table, 4, 4)

    def test_verifier_detects_bad_shape(self):
        assert verify_spt_incidence(np.zeros((3, 3), dtype=int), 4, 4)


class TestSSPTStructure:
    def test_counts_match_formula(self):
        for r1, r2 in ((4, 2), (5, 2), (4, 4), (6, 6)):
            s = SSPT(r1, r2)
            assert s.num_nodes == SSPT.expected_num_nodes(r1, r2)

    def test_uniform_radix_2r1(self):
        s = SSPT(5, 2)
        assert {s.radix(r) for r in range(s.num_routers)} == {10}

    def test_cost_3_and_2(self):
        s = SSPT(4, 4)
        assert s.ports_per_node() == pytest.approx(3.0)
        assert s.links_per_node() == pytest.approx(2.0)

    def test_validates(self):
        for r1, r2 in ((4, 2), (4, 4)):
            report = validate_topology(SSPT(r1, r2))
            assert report.ok, report.problems

    def test_rejects_non_dividing_r2(self):
        with pytest.raises(ValueError):
            SSPT(4, 3)

    def test_rejects_negative_p(self):
        with pytest.raises(ValueError):
            SSPT(4, 2, p=-1)

    def test_copies(self):
        assert SSPT(5, 2).copies == 5  # MLFM: h layers
        assert SSPT(4, 4).copies == 2  # OFT: two stacked SPTs

    def test_copy_indexing(self):
        s = SSPT(4, 2)
        lpc = s.leaves_per_copy
        assert s.copy_of(0) == 0 and s.copy_of(lpc) == 1
        assert s.index_in_copy(lpc + 2) == 2
        with pytest.raises(ValueError):
            s.copy_of(s.num_bottom)  # top router

    def test_counterparts_have_r1_paths(self):
        s = SSPT(4, 4)
        for leaf in (0, 3, s.leaves_per_copy - 1):
            for other in s.counterparts(leaf):
                assert len(s.common_neighbors(leaf, other)) == s.r1

    def test_non_counterparts_single_path(self):
        s = SSPT(4, 4)
        assert len(s.common_neighbors(0, 1)) == 1

    def test_link_classes(self):
        s = SSPT(4, 2)
        top = s.neighbors(0)[0]
        assert s.link_class(0, top) == LINK_UP
        assert s.link_class(top, 0) == LINK_DOWN


class TestIsomorphisms:
    """The paper's claim: MLFM and OFT are members of the SSPT class."""

    def test_sspt_h_2_is_mlfm(self):
        for h in (3, 4, 5):
            s = SSPT(h, 2)
            m = MLFM(h)
            assert (s.num_nodes, s.num_routers) == (m.num_nodes, m.num_routers)
            assert nx.is_isomorphic(s.to_networkx(), m.to_networkx())

    def test_sspt_k_k_is_oft(self):
        for k in (3, 4, 6):
            s = SSPT(k, k)
            o = OFT(k)
            assert (s.num_nodes, s.num_routers) == (o.num_nodes, o.num_routers)
            assert nx.is_isomorphic(s.to_networkx(), o.to_networkx())

    def test_sspt_routes_and_simulates(self):
        # The generic construction plugs into the whole stack.
        from repro.routing import MinimalRouting
        from repro.sim import Network
        from repro.traffic import UniformRandom

        s = SSPT(4, 4)
        net = Network(s, MinimalRouting(s, seed=1))
        stats = net.run_synthetic(
            UniformRandom(s.num_nodes), load=0.5, warmup_ns=500, measure_ns=2000, seed=3
        )
        assert stats.throughput == pytest.approx(0.5, rel=0.1)

    def test_sspt_deadlock_free(self):
        from repro.routing import build_cdg_indirect
        from repro.routing.vc import PhaseVC

        cdg = build_cdg_indirect(SSPT(4, 2), PhaseVC())
        assert cdg.is_acyclic()
