"""Tests for the static link-load analyzer."""

import pytest

from repro.analysis.linkload import (
    channel_loads_indirect,
    channel_loads_minimal,
    permutation_flows,
    saturation_throughput,
    uniform_flows,
)
from repro.topology import MLFM, SlimFly
from repro.topology.base import Topology


def star():
    """Four leaves around a hub; one node per leaf."""
    return Topology("star", [[1, 2, 3, 4], [0], [0], [0], [0]], [0, 1, 1, 1, 1])


class TestFlows:
    def test_uniform_weights_sum_to_one_per_source(self, sf5):
        total = {}
        for s, d, w in uniform_flows(sf5):
            total[s] = total.get(s, 0.0) + w
        assert all(abs(v - 1.0) < 1e-9 for v in total.values())

    def test_permutation_flows_skip_idle(self):
        flows = list(permutation_flows([2, -1, 0]))
        assert flows == [(0, 2, 1.0), (2, 0, 1.0)]


class TestMinimalLoads:
    def test_star_shift(self):
        t = star()
        # Nodes 0..3 on leaves 1..4; shift by one node = next leaf.
        loads = channel_loads_minimal(t, permutation_flows([1, 2, 3, 0]))
        # Each leaf sends 1 flow up and receives 1 down.
        for leaf in (1, 2, 3, 4):
            assert loads[(leaf, 0)] == pytest.approx(1.0)
            assert loads[(0, leaf)] == pytest.approx(1.0)
        assert saturation_throughput(loads) == pytest.approx(1.0)

    def test_intra_router_traffic_loads_nothing(self, sf5):
        # Nodes 0 and 1 share router 0.
        loads = channel_loads_minimal(sf5, [(0, 1, 1.0)])
        assert loads == {}

    def test_diversity_splits_load(self, mlfm4):
        h = mlfm4.h
        # Same-column pair: h minimal paths, each getting 1/h.
        src_node = mlfm4.nodes_of(0)[0]
        dst_node = mlfm4.nodes_of(h + 1)[0]
        loads = channel_loads_minimal(mlfm4, [(src_node, dst_node, 1.0)])
        assert all(v == pytest.approx(1.0 / h) for v in loads.values())
        assert len(loads) == 2 * h

    def test_uniform_saturation_near_one(self, paper_trio):
        for topo in paper_trio:
            loads = channel_loads_minimal(topo, uniform_flows(topo))
            assert saturation_throughput(loads) >= 0.9, topo.name


class TestIndirectLoads:
    def test_doubles_total_load(self, mlfm4):
        # INR paths are twice as long, so summed channel load doubles
        # (up to intra-router traffic, absent for this pair).
        src_node = mlfm4.nodes_of(0)[0]
        dst_node = mlfm4.nodes_of(7)[0]
        direct = channel_loads_minimal(mlfm4, [(src_node, dst_node, 1.0)])
        indirect = channel_loads_indirect(mlfm4, [(src_node, dst_node, 1.0)])
        assert sum(indirect.values()) == pytest.approx(2 * sum(direct.values()))

    def test_balances_worst_case(self, mlfm4):
        from repro.traffic import worst_case_traffic

        wc = worst_case_traffic(mlfm4)
        min_sat = saturation_throughput(
            channel_loads_minimal(mlfm4, permutation_flows(wc.destinations))
        )
        inr_sat = saturation_throughput(
            channel_loads_indirect(mlfm4, permutation_flows(wc.destinations))
        )
        # Sec. 4.3.1: INR lifts the WC saturation to about half of the
        # uniform saturation -- well above minimal's 1/h (at h = 4 the
        # ratio is ~1.9; it grows with h).
        assert inr_sat > 1.5 * min_sat
        assert 0.3 <= inr_sat <= 0.7

    def test_respects_custom_intermediates(self, sf5):
        src_node = sf5.nodes_of(0)[0]
        dst_node = sf5.nodes_of(30)[0]
        loads = channel_loads_indirect(
            sf5, [(src_node, dst_node, 1.0)], intermediates=[10]
        )
        # All flow must pass through router 10.
        through_10 = sum(v for (u, v_), v in loads.items() if v_ == 10)
        assert through_10 == pytest.approx(1.0)

    def test_no_eligible_intermediate_rejected(self, sf5):
        src_node = sf5.nodes_of(0)[0]
        dst_node = sf5.nodes_of(1)[0]
        with pytest.raises(ValueError):
            channel_loads_indirect(sf5, [(src_node, dst_node, 1.0)], intermediates=[0, 1])


class TestSaturation:
    def test_empty_loads(self):
        assert saturation_throughput({}) == 1.0

    def test_below_one_uncapped(self):
        assert saturation_throughput({(0, 1): 0.5}) == 1.0

    def test_reciprocal_above_one(self):
        assert saturation_throughput({(0, 1): 4.0}) == 0.25
