"""Tests for the extension features: channel utilization, UGAL-G,
NN mapping strategies, result export, replicated sweeps, topology
serialization."""

import json
import random

import pytest

from repro.experiments.export import rows_to_dicts, write_csv, write_json
from repro.experiments.runner import load_sweep_replicated
from repro.routing import MinimalRouting, UGALRouting
from repro.sim import Network
from repro.topology import (
    MLFM,
    OFT,
    SlimFly,
    load_topology,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)
from repro.traffic import NearestNeighbor3D, UniformRandom, worst_case_traffic


class TestChannelUtilization:
    def test_worst_case_hotspot_visible(self, mlfm4):
        wc = worst_case_traffic(mlfm4)
        net = Network(mlfm4, MinimalRouting(mlfm4, seed=1))
        net.run_synthetic(wc, load=0.2, warmup_ns=1000, measure_ns=4000, seed=3)
        util = net.channel_utilization()
        router_links = {k: v for k, v in util.items() if k[0] != "eject"}
        # The overloaded single paths run near saturation while the
        # average link is nearly idle.
        assert max(router_links.values()) > 0.7
        mean = sum(router_links.values()) / len(router_links)
        assert mean < 0.45

    def test_uniform_balanced(self, sf5):
        net = Network(sf5, MinimalRouting(sf5, seed=1))
        net.run_synthetic(
            UniformRandom(sf5.num_nodes), load=0.5,
            warmup_ns=1000, measure_ns=4000, seed=3,
        )
        util = net.channel_utilization()
        router_links = [v for k, v in util.items() if k[0] != "eject"]
        # Uniform traffic spreads: no link much above the mean.
        mean = sum(router_links) / len(router_links)
        assert max(router_links) < 3 * mean + 0.05

    def test_ejection_utilization_tracks_load(self, sf5):
        net = Network(sf5, MinimalRouting(sf5, seed=1))
        net.run_synthetic(
            UniformRandom(sf5.num_nodes), load=0.5,
            warmup_ns=1000, measure_ns=4000, seed=3,
        )
        util = net.channel_utilization()
        eject = [v for k, v in util.items() if k[0] == "eject"]
        assert sum(eject) / len(eject) == pytest.approx(0.5, rel=0.1)

    def test_requires_window(self, sf5):
        net = Network(sf5, MinimalRouting(sf5, seed=1))
        with pytest.raises(ValueError):
            net.channel_utilization()

    def test_explicit_window(self, sf5):
        net = Network(sf5, MinimalRouting(sf5, seed=1))
        net.run_synthetic(
            UniformRandom(sf5.num_nodes), load=0.3,
            warmup_ns=500, measure_ns=2000, seed=3,
        )
        a = net.channel_utilization()
        b = net.channel_utilization(window_ns=4000)
        key = next(k for k in a if k[0] != "eject")
        assert b[key] == pytest.approx(a[key] / 2)

    def test_window_set_after_exchange(self, sf5):
        from repro.traffic.alltoall import AllToAll

        net = Network(sf5, MinimalRouting(sf5, seed=1))
        res = net.run_exchange(AllToAll(sf5.num_nodes, message_bytes=256))
        # Previously raised: no window was recorded for finite runs.
        util = net.channel_utilization()
        assert net._utilization_window == pytest.approx(res["completion_ns"])
        router_links = [v for k, v in util.items() if k[0] != "eject"]
        assert max(router_links) > 0
        assert all(0.0 <= v <= 1.0 + 1e-9 for v in router_links)

    def test_window_set_after_workload(self, sf5):
        from repro.workload import ring_allgather

        net = Network(sf5, MinimalRouting(sf5, seed=1))
        res = net.run_workload(ring_allgather(sf5.num_nodes, 512))
        util = net.channel_utilization()
        assert net._utilization_window == pytest.approx(res["completion_ns"])
        assert max(v for k, v in util.items() if k[0] != "eject") > 0


class TestUGALGlobal:
    def test_signal_validation(self, sf5):
        with pytest.raises(ValueError):
            UGALRouting(sf5, signal="psychic")

    def test_name(self, sf5):
        assert UGALRouting(sf5, signal="global").name == "UGAL-G"
        assert UGALRouting(sf5, signal="local").name == "UGAL-A"

    def test_global_sees_downstream_congestion(self, mlfm4):
        # Congest the SECOND hop of the minimal path: local UGAL is
        # blind to it, global UGAL diverts.
        src, dst = 0, 7
        middle = mlfm4.common_neighbors(src, dst)[0]

        class SecondHopCongestion:
            def queue_len(self, router, neighbor):
                return 50 if (router, neighbor) == (middle, dst) else 0

            def queue_capacity(self):
                return 100

        ctx = SecondHopCongestion()
        local = UGALRouting(mlfm4, c=1.0, num_indirect=8, seed=1, signal="local")
        glob = UGALRouting(mlfm4, c=1.0, num_indirect=8, seed=1, signal="global")
        assert all(local.route(src, dst, ctx).kind == "minimal" for _ in range(10))
        kinds = {glob.route(src, dst, ctx).kind for _ in range(10)}
        assert "indirect" in kinds

    def test_global_simulates(self, mlfm4):
        net = Network(mlfm4, UGALRouting(mlfm4, signal="global", seed=1))
        stats = net.run_synthetic(
            worst_case_traffic(mlfm4), load=0.3,
            warmup_ns=500, measure_ns=2000, seed=3,
        )
        assert stats.throughput == pytest.approx(0.3, rel=0.15)


class TestNNMapping:
    def test_contiguous_default(self):
        nn = NearestNeighbor3D(60, message_bytes=8, dims=(3, 4, 5))
        assert nn.node_map is None
        assert len(list(nn.node_messages(0))) == 6

    def test_custom_mapping_permutes(self):
        dims = (3, 4, 5)
        mapping = list(range(60))
        random.Random(1).shuffle(mapping)
        nn = NearestNeighbor3D(60, message_bytes=8, dims=dims, node_map=mapping)
        # Messages of the node holding rank 0 go to nodes holding rank
        # 0's torus neighbors.
        node0 = mapping[0]
        dsts = {d for d, _ in nn.node_messages(node0)}
        contiguous = NearestNeighbor3D(60, message_bytes=8, dims=dims)
        expected = {mapping[d] for d, _ in contiguous.node_messages(0)}
        assert dsts == expected

    def test_total_bytes_mapping_invariant(self):
        dims = (3, 4, 5)
        mapping = list(range(60))
        random.Random(2).shuffle(mapping)
        a = NearestNeighbor3D(60, message_bytes=8, dims=dims)
        b = NearestNeighbor3D(60, message_bytes=8, dims=dims, node_map=mapping)
        assert a.total_bytes == b.total_bytes

    def test_unmapped_nodes_idle(self):
        nn = NearestNeighbor3D(70, message_bytes=8, dims=(3, 4, 5),
                               node_map=list(range(60)))
        assert list(nn.node_messages(65)) == []

    def test_mapping_validation(self):
        with pytest.raises(ValueError):
            NearestNeighbor3D(60, dims=(3, 4, 5), node_map=[0, 1])  # wrong length
        with pytest.raises(ValueError):
            NearestNeighbor3D(60, dims=(3, 4, 5), node_map=[0] * 60)  # duplicates
        with pytest.raises(ValueError):
            NearestNeighbor3D(60, dims=(3, 4, 5), node_map=list(range(1, 61)))  # range

    def test_random_mapping_hurts_mlfm(self, mlfm5=None):
        # The paper's point: the contiguous mapping aligns the torus
        # with the topology; a random mapping destroys X-locality.
        from repro.topology import MLFM
        from repro.traffic import paper_torus_dims

        topo = MLFM(4)
        dims = paper_torus_dims(topo)
        mapping = list(range(topo.num_nodes))
        random.Random(3).shuffle(mapping)
        effs = {}
        for label, nm in (("contiguous", None), ("random", mapping)):
            nn = NearestNeighbor3D(topo.num_nodes, message_bytes=2048, dims=dims,
                                   node_map=nm)
            net = Network(topo, MinimalRouting(topo, seed=1))
            effs[label] = net.run_exchange(nn)["effective_throughput"]
        assert effs["contiguous"] > effs["random"]


class TestExport:
    def test_csv_roundtrip(self, tmp_path):
        path = tmp_path / "out.csv"
        write_csv(path, ["a", "b"], [[1, 2.5], [3, 4.5]])
        lines = path.read_text().strip().split("\n")
        assert lines[0] == "a,b"
        assert lines[1] == "1,2.5"

    def test_csv_rejects_ragged(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv(tmp_path / "x.csv", ["a", "b"], [[1]])

    def test_json_handles_figure_payload(self, tmp_path):
        from repro.experiments import fig3_data

        path = tmp_path / "fig3.json"
        write_json(path, fig3_data(max_radix=16))
        data = json.loads(path.read_text())
        assert "best_at_radix" in data

    def test_json_dataclasses(self, tmp_path):
        from repro.analysis import cost_metrics

        m = cost_metrics(MLFM(3))
        path = tmp_path / "m.json"
        write_json(path, m)
        data = json.loads(path.read_text())
        assert data["num_nodes"] == 36

    def test_rows_to_dicts(self):
        out = rows_to_dicts(["x", "y"], [[1, 2]])
        assert out == [{"x": 1, "y": 2}]
        with pytest.raises(ValueError):
            rows_to_dicts(["x"], [[1, 2]])


class TestReplicatedSweep:
    def test_mean_and_std(self, mlfm4):
        points = load_sweep_replicated(
            mlfm4,
            lambda t, s: MinimalRouting(t, seed=s),
            lambda t: UniformRandom(t.num_nodes),
            loads=[0.3],
            replicas=3,
            warmup_ns=800,
            measure_ns=3000,
            seed=5,
        )
        p = points[0]
        assert p.replicas == 3
        assert p.mean_throughput == pytest.approx(0.3, rel=0.1)
        assert p.std_throughput < 0.05
        assert p.mean_latency_ns and p.mean_latency_ns > 0

    def test_rejects_zero_replicas(self, mlfm4):
        with pytest.raises(ValueError):
            load_sweep_replicated(
                mlfm4, lambda t, s: MinimalRouting(t, seed=s),
                lambda t: UniformRandom(t.num_nodes), loads=[0.3], replicas=0,
            )


class TestSerialization:
    def test_dict_roundtrip(self, mlfm4):
        data = topology_to_dict(mlfm4)
        loaded = topology_from_dict(data)
        assert loaded.num_nodes == mlfm4.num_nodes
        assert loaded.num_routers == mlfm4.num_routers
        for r in range(mlfm4.num_routers):
            assert loaded.neighbors(r) == mlfm4.neighbors(r)

    def test_link_classes_preserved(self, mlfm4):
        loaded = topology_from_dict(topology_to_dict(mlfm4))
        for u, v in list(mlfm4.directed_channels())[:50]:
            assert loaded.link_class(u, v) == mlfm4.link_class(u, v)

    def test_valiant_pool_preserved(self, oft4):
        loaded = topology_from_dict(topology_to_dict(oft4))
        assert loaded.valiant_intermediates() == oft4.valiant_intermediates()

    def test_file_roundtrip(self, tmp_path, sf5):
        path = tmp_path / "sf.json"
        save_topology(sf5, path)
        loaded = load_topology(path)
        assert loaded.num_nodes == sf5.num_nodes
        assert loaded.endpoint_diameter() == 2

    def test_version_check(self):
        with pytest.raises(ValueError):
            topology_from_dict({"format_version": 99})

    def test_loaded_topology_simulates(self, mlfm4):
        loaded = topology_from_dict(topology_to_dict(mlfm4))
        net = Network(loaded, MinimalRouting(loaded, seed=1))
        stats = net.run_synthetic(
            UniformRandom(loaded.num_nodes), load=0.3,
            warmup_ns=800, measure_ns=3000, seed=3,
        )
        assert stats.throughput == pytest.approx(0.3, rel=0.15)

    def test_loaded_topology_deadlock_analysis(self, mlfm4):
        from repro.routing import build_cdg_minimal
        from repro.routing.vc import PhaseVC, default_vc_policy

        loaded = topology_from_dict(topology_to_dict(mlfm4))
        # link classes survived, so the default policy dispatch and the
        # CDG proof still work.
        assert isinstance(default_vc_policy(loaded), PhaseVC)
        assert build_cdg_minimal(loaded, PhaseVC()).is_acyclic()
