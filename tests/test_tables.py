"""Tests for distributed forwarding tables (repro.routing.tables)."""

import pytest

from repro.routing.tables import ForwardingTables
from repro.topology import MLFM, OFT, SlimFly


class TestNextHops:
    def test_self_empty(self, sf5):
        ft = ForwardingTables(sf5)
        assert ft.next_hops(3, 3) == ()

    def test_adjacent_single_hop(self, sf5):
        ft = ForwardingTables(sf5)
        n = sf5.neighbors(0)[0]
        assert ft.next_hops(0, n) == (n,)

    def test_hops_are_neighbors(self, mlfm4):
        ft = ForwardingTables(mlfm4)
        for dst in range(1, mlfm4.num_routers):
            for hop in ft.next_hops(0, dst):
                assert mlfm4.is_edge(0, hop)

    def test_multipath_on_diverse_pairs(self, mlfm4):
        ft = ForwardingTables(mlfm4)
        h = mlfm4.h
        # Same-column pair: h ECMP entries.
        assert len(ft.next_hops(0, h + 1)) == h

    def test_single_path_pairs(self, oft4):
        ft = ForwardingTables(oft4)
        assert len(ft.next_hops(0, 1)) == 1


class TestWalk:
    def test_walk_reaches_destination(self, sf5):
        ft = ForwardingTables(sf5)
        for dst in range(1, sf5.num_routers, 5):
            path = ft.walk(0, dst)
            assert path[0] == 0 and path[-1] == dst
            assert len(path) - 1 <= 2

    def test_walk_choose_max(self, mlfm4):
        ft = ForwardingTables(mlfm4)
        h = mlfm4.h
        path_min = ft.walk(0, h + 1, choose=min)
        path_max = ft.walk(0, h + 1, choose=max)
        assert path_min[1] != path_max[1]  # distinct ECMP branches
        assert path_min[-1] == path_max[-1]


class TestVerify:
    @pytest.mark.parametrize("topo_factory", [
        lambda: SlimFly(5),
        lambda: MLFM(4),
        lambda: OFT(4),
    ])
    def test_tables_correct_and_loop_free(self, topo_factory):
        topo = topo_factory()
        ft = ForwardingTables(topo)
        assert ft.verify() == []

    def test_entry_counts(self, mlfm4):
        ft = ForwardingTables(mlfm4)
        # Every router holds >= R-1 entries (one per destination,
        # more where multipath exists).
        assert ft.table_size(0) >= mlfm4.num_routers - 1
        assert ft.total_entries() >= mlfm4.num_routers * (mlfm4.num_routers - 1)
