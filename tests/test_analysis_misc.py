"""Tests for cost, scalability and diversity analyses (Sec. 2.3, Fig. 3)."""

import pytest

from repro.analysis.cost import COST_TABLE, cost_metrics
from repro.analysis.diversity import path_diversity_stats
from repro.analysis.scalability import (
    FAMILIES,
    nodes_at_radix,
    scalability_points,
    scalability_table,
)
from repro.topology import MLFM, OFT, SlimFly


class TestCostMetrics:
    def test_mlfm_exact(self, mlfm4):
        m = cost_metrics(mlfm4, with_diameter=True)
        assert m.ports_per_node == pytest.approx(3.0)
        assert m.links_per_node == pytest.approx(2.0)
        assert m.diameter == 2
        assert m.max_radix == 2 * mlfm4.h

    def test_cost_table_families(self):
        assert set(COST_TABLE) == {
            "2D HyperX", "Slim Fly", "2-lvl Fat-Tree", "3-lvl Fat-Tree", "MLFM", "OFT",
        }
        assert COST_TABLE["3-lvl Fat-Tree"]["ports_per_node"] == 5


class TestScalability:
    def test_points_monotone_radix(self):
        for family in FAMILIES:
            pts = scalability_points(family, 64)
            radii = [r for r, _ in pts]
            assert radii == sorted(radii)
            assert all(r <= 64 for r in radii)

    def test_paper_radix64_numbers(self):
        # Sec. 2.3.1: with radix-64 routers OFT ~63.5K, MLFM and SF ~33-36K.
        table = scalability_table(64)
        assert table["OFT"] == 63552
        assert 30_000 <= table["MLFM"] <= 37_000
        assert 30_000 <= table["SF"] <= 37_000

    def test_oft_twice_mlfm(self):
        # The paper's headline: OFT scales to ~2x the MLFM.
        table = scalability_table(64)
        assert table["OFT"] / table["MLFM"] == pytest.approx(2.0, rel=0.12)

    def test_ft2_smallest(self):
        table = scalability_table(64)
        assert table["FT2"] < min(table["SF"], table["MLFM"], table["OFT"])

    def test_points_match_constructions(self):
        for r, n in scalability_points("MLFM", 20):
            h = r // 2
            assert MLFM(h).num_nodes == n
        for r, n in scalability_points("OFT", 16):
            k = r // 2
            assert OFT(k).num_nodes == n

    def test_sf_points_match_construction(self):
        for r, n in scalability_points("SF", 24):
            # Recover q from the point by matching constructions.
            matched = False
            for q in (4, 5, 7, 8, 9, 11, 13):
                sf = SlimFly(q, "floor")
                if sf.max_radix() == r and sf.num_nodes == n:
                    matched = True
                    break
            assert matched, (r, n)

    def test_unknown_family_rejected(self):
        with pytest.raises(ValueError):
            scalability_points("torus", 64)

    def test_nodes_at_radix_requires_feasible(self):
        with pytest.raises(ValueError):
            nodes_at_radix("OFT", 4)


class TestDiversity:
    def test_sf_adjacent_pairs_single_path(self, sf5):
        st = path_diversity_stats(sf5)
        # q = 5 is Hoffman-Singleton: girth 5, so even distance-2 pairs
        # have a unique common neighbor.
        assert st.mean == 1.0 and st.max == 1

    def test_sf9_sparse_diversity(self, sf9):
        st = path_diversity_stats(sf9)
        # Paper (q=23): average ~1.1 over distance-2 pairs, low overall.
        assert st.mean_distance2 is not None
        assert 1.0 <= st.mean_distance2 <= 1.4
        assert st.max_distance2 >= 2

    def test_mlfm_histogram(self, mlfm4):
        st = path_diversity_stats(mlfm4)
        h = mlfm4.h
        n_lr = mlfm4.num_local_routers
        same_column_pairs = (h + 1) * h * (h - 1)  # ordered, l=h layers
        assert st.histogram[h] == same_column_pairs
        assert st.histogram[1] == n_lr * (n_lr - 1) - same_column_pairs

    def test_oft_histogram(self, oft4):
        st = path_diversity_stats(oft4)
        k = oft4.k
        assert st.histogram[k] == 2 * oft4.rl  # ordered symmetric pairs
        assert st.max == k

    def test_explicit_pairs(self, mlfm4):
        h = mlfm4.h
        st = path_diversity_stats(mlfm4, pairs=[(0, h + 1)])
        assert st.num_pairs == 1 and st.mean == h

    def test_empty_pairs_rejected(self, mlfm4):
        with pytest.raises(ValueError):
            path_diversity_stats(mlfm4, pairs=[])
