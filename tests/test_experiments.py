"""Tests for the experiment harness (configs, runner, figure functions).

Simulation-heavy figure functions are exercised at reduced settings;
the full regenerations live in benchmarks/.
"""

import pytest

from repro.experiments import (
    SCALES,
    configs_for_scale,
    fig3_data,
    fig5_data,
    load_sweep,
    run_exchange,
    saturation_point,
    table2_data,
    windows_for_scale,
)
from repro.experiments.runner import SweepPoint
from repro.routing import MinimalRouting
from repro.topology import MLFM
from repro.traffic import AllToAll, UniformRandom


class TestConfigs:
    def test_scales_exist(self):
        assert set(SCALES) == {"tiny", "small", "paper"}

    def test_four_configs_per_scale(self):
        for scale in SCALES:
            configs = configs_for_scale(scale)
            assert [c.key for c in configs] == ["sf-floor", "sf-ceil", "mlfm", "oft"]

    def test_paper_scale_sizes(self):
        by_key = {c.key: c for c in configs_for_scale("paper")}
        assert by_key["sf-floor"].topology().num_nodes == 3042
        assert by_key["sf-ceil"].topology().num_nodes == 3380
        assert by_key["mlfm"].topology().num_nodes == 3600
        assert by_key["oft"].topology().num_nodes == 3192

    def test_unknown_scale_rejected(self):
        with pytest.raises(ValueError):
            configs_for_scale("huge")

    def test_routing_factories(self):
        config = configs_for_scale("tiny")[0]
        topo = config.topology()
        assert config.minimal(topo).name == "MIN"
        assert config.indirect(topo).name == "INR"
        adaptive = config.adaptive(topo)
        assert adaptive.name.startswith("UGAL")

    def test_adaptive_overrides(self):
        config = configs_for_scale("tiny")[2]  # mlfm
        topo = config.topology()
        adaptive = config.adaptive(topo, num_indirect=9)
        assert adaptive.num_indirect == 9

    def test_windows(self):
        w = windows_for_scale("paper")
        assert w.measure_ns == 180_000.0
        assert w.a2a_message_bytes == 7_680
        assert w.nn_message_bytes == 524_288
        assert windows_for_scale("tiny").measure_ns < w.measure_ns


class TestRunner:
    def test_load_sweep_points(self, mlfm4):
        pts = load_sweep(
            mlfm4,
            lambda t, s: MinimalRouting(t, seed=s),
            lambda t: UniformRandom(t.num_nodes),
            loads=[0.2, 0.5],
            warmup_ns=500,
            measure_ns=1500,
            seed=1,
        )
        assert [p.load for p in pts] == [0.2, 0.5]
        assert all(0 < p.throughput <= 1 for p in pts)
        assert all(p.mean_latency_ns and p.mean_latency_ns > 0 for p in pts)

    def test_saturation_point_accepted(self):
        pts = [
            SweepPoint(0.2, 0.2, 1.0, 1.0, 10, 0.0),
            SweepPoint(0.5, 0.49, 1.0, 1.0, 10, 0.0),
            SweepPoint(0.8, 0.6, 1.0, 1.0, 10, 0.0),
        ]
        assert saturation_point(pts) == 0.5

    def test_saturation_point_all_saturated(self):
        pts = [SweepPoint(0.5, 0.2, 1.0, 1.0, 10, 0.0)]
        assert saturation_point(pts) == 0.2

    def test_run_exchange(self, mlfm4):
        res = run_exchange(
            mlfm4,
            lambda t, s: MinimalRouting(t, seed=s),
            AllToAll(mlfm4.num_nodes, message_bytes=256),
        )
        assert 0 < res["effective_throughput"] <= 1.0


class TestFigureFunctions:
    def test_table2(self):
        data = table2_data()
        assert data["table"].shape == (13, 4)
        assert "4-ML3B" in data["report"]

    def test_fig3(self):
        data = fig3_data(max_radix=32)
        assert data["best_at_radix"]["OFT"] > data["best_at_radix"]["MLFM"]
        assert "Fig. 3" in data["report"]

    def test_fig5(self):
        data = fig5_data(scale="tiny", seed=0)
        assert data["saturation"] == pytest.approx(data["expected_saturation"], rel=0.15)

    def test_fig6_smoke(self):
        from repro.experiments import fig6_data

        data = fig6_data(
            scale="tiny", uni_loads=(0.4,), wc_loads=(0.1,),
            configs=configs_for_scale("tiny")[2:3],  # just MLFM
        )
        assert "mlfm/MIN/UNI" in data["saturations"]
        assert len(data["rows"]) == 4  # 2 routings x 2 patterns x 1 load

    def test_fig13_smoke(self):
        from repro.experiments import fig13_data

        data = fig13_data(scale="tiny", configs=configs_for_scale("tiny")[3:4])
        assert set(data["results"]) == {"oft/MIN", "oft/INR", "oft/ADAPT"}
        assert all(0 < v <= 1 for v in data["results"].values())


class TestAdaptiveFigureFunctions:
    """Smoke coverage of the fig7-12 code paths at minimal settings
    (full regenerations live in benchmarks/)."""

    def test_fig7_minimal_grid(self):
        from repro.experiments import fig7_data

        data = fig7_data(scale="tiny", uni_loads=(0.4,), wc_loads=(0.1,),
                         ni_values=(2,), csf_values=(1.0,))
        assert "a" in data and "b" in data
        assert len(data["a"]["rows"]) == 2  # 1 value x 2 patterns x 1 load

    def test_fig8_threshold_grid(self):
        from repro.experiments import fig8_data

        data = fig8_data(scale="tiny", uni_loads=(0.4,), wc_loads=(0.1,),
                         ni_values=(2,), csf_values=(1.0,), threshold=0.10)
        # The threshold keeps the uniform point essentially minimal.
        uni_rows = [r for r in data["a"]["rows"] if r[2] == "UNI"]
        assert uni_rows[0][6] < 0.1  # indirect fraction

    def test_fig9_and_fig11_mlfm(self):
        from repro.experiments import fig9_data, fig11_data

        d9 = fig9_data(scale="tiny", uni_loads=(0.4,), wc_loads=(0.1,),
                       ni_values=(2,), c_values=(2.0,))
        d11 = fig11_data(scale="tiny", uni_loads=(0.4,), wc_loads=(0.1,),
                         ni_values=(2,), c_values=(2.0,))
        assert len(d9["a"]["rows"]) == len(d11["a"]["rows"]) == 2

    def test_fig10_and_fig12_oft(self):
        from repro.experiments import fig10_data, fig12_data

        d10 = fig10_data(scale="tiny", uni_loads=(0.4,), wc_loads=(0.1,),
                         ni_values=(1,), c_values=(2.0,))
        d12 = fig12_data(scale="tiny", uni_loads=(0.4,), wc_loads=(0.1,),
                         ni_values=(1,), c_values=(2.0,))
        for d in (d10, d12):
            for row in d["a"]["rows"]:
                assert 0.0 <= row[4] <= 1.0  # throughput in range

    def test_fig14_smoke(self):
        from repro.experiments import fig14_data, configs_for_scale

        data = fig14_data(scale="tiny", configs=configs_for_scale("tiny")[2:3])
        assert set(data["results"]) == {"mlfm/MIN", "mlfm/INR", "mlfm/ADAPT"}

    def test_tail_effects_smoke(self):
        from repro.experiments import tail_effects_data, configs_for_scale

        data = tail_effects_data(scale="tiny", configs=configs_for_scale("tiny")[3:4])
        assert 0.5 <= data["ratios"]["oft"] <= 1.1


class TestMessageTracking:
    def test_per_message_stats(self, mlfm4):
        from repro.sim import Network
        from repro.routing import MinimalRouting

        net = Network(mlfm4, MinimalRouting(mlfm4, seed=1))
        res = net.run_exchange(
            AllToAll(mlfm4.num_nodes, message_bytes=512), track_messages=True
        )
        msgs = res["messages"]
        n = mlfm4.num_nodes
        assert msgs["count"] == n * (n - 1)
        assert 0 < msgs["mean_latency_ns"] <= msgs["max_latency_ns"]
        assert msgs["p50_latency_ns"] <= msgs["p99_latency_ns"] <= msgs["max_latency_ns"]

    def test_tracking_off_by_default(self, mlfm4):
        from repro.sim import Network
        from repro.routing import MinimalRouting

        net = Network(mlfm4, MinimalRouting(mlfm4, seed=1))
        res = net.run_exchange(AllToAll(mlfm4.num_nodes, message_bytes=512))
        assert "messages" not in res
