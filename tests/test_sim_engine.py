"""Tests for the discrete-event kernel and simulation config."""

import pytest

from repro.sim.config import PAPER_CONFIG, SimConfig
from repro.sim.engine import Engine


class TestEngine:
    def test_runs_in_time_order(self):
        e = Engine()
        log = []
        e.schedule(5.0, log.append, "b")
        e.schedule(1.0, log.append, "a")
        e.schedule(9.0, log.append, "c")
        e.run()
        assert log == ["a", "b", "c"]

    def test_fifo_for_equal_timestamps(self):
        e = Engine()
        log = []
        for tag in ("x", "y", "z"):
            e.schedule(3.0, log.append, tag)
        e.run()
        assert log == ["x", "y", "z"]

    def test_clock_advances(self):
        e = Engine()
        seen = []
        e.schedule(2.5, lambda: seen.append(e.now))
        e.schedule(7.5, lambda: seen.append(e.now))
        e.run()
        assert seen == [2.5, 10.0 - 2.5]

    def test_until_bound(self):
        e = Engine()
        log = []
        e.schedule(1.0, log.append, 1)
        e.schedule(10.0, log.append, 2)
        e.run(until=5.0)
        assert log == [1]
        assert e.now == 5.0
        assert e.pending == 1

    def test_until_then_continue(self):
        e = Engine()
        log = []
        e.schedule(1.0, log.append, 1)
        e.schedule(10.0, log.append, 2)
        e.run(until=5.0)
        e.run()
        assert log == [1, 2]

    def test_max_events(self):
        e = Engine()
        log = []
        for i in range(10):
            e.schedule(float(i), log.append, i)
        e.run(max_events=3)
        assert log == [0, 1, 2]

    def test_events_from_events(self):
        e = Engine()
        log = []

        def chain(n):
            log.append(n)
            if n < 4:
                e.schedule(1.0, chain, n + 1)

        e.schedule(0.0, chain, 0)
        e.run()
        assert log == [0, 1, 2, 3, 4]

    def test_schedule_at(self):
        e = Engine()
        seen = []
        e.schedule_at(12.0, lambda: seen.append(e.now))
        e.run()
        assert seen == [12.0]

    def test_events_executed_counter(self):
        e = Engine()
        for _ in range(5):
            e.schedule(1.0, lambda: None)
        e.run()
        assert e.events_executed == 5

    def test_schedule_at_in_the_past_raises(self):
        e = Engine()
        e.schedule(5.0, lambda: None)
        e.run()
        assert e.now == 5.0
        with pytest.raises(ValueError, match=r"in the past"):
            e.schedule_at(4.0, lambda: None)
        e.schedule_at(5.0, lambda: None)  # when == now is allowed

    def test_clear_resets_queue_clock_and_counters(self):
        e = Engine()
        e.schedule(1.0, lambda: None)
        e.schedule(10.0, lambda: None)
        e.run(until=5.0)
        assert e.pending == 1 and e.now == 5.0 and e.events_executed == 1
        e.clear()
        assert e.pending == 0
        assert e.now == 0.0
        assert e.events_executed == 0
        # A cleared engine behaves like a fresh one (no stale events fire,
        # FIFO sequence restarts).
        log = []
        e.schedule_at(2.0, log.append, "fresh")
        e.run()
        assert log == ["fresh"] and e.now == 2.0


class TestSimConfig:
    def test_paper_defaults(self):
        c = PAPER_CONFIG
        assert c.link_bandwidth_gbps == 100.0
        assert c.link_latency_ns == 50.0
        assert c.switch_latency_ns == 100.0
        assert c.buffer_bytes_per_port == 100_000
        assert c.packet_bytes == 256

    def test_packet_time(self):
        assert PAPER_CONFIG.packet_time_ns == pytest.approx(20.48)

    def test_buffer_packets(self):
        assert PAPER_CONFIG.buffer_packets_per_port == 390
        assert PAPER_CONFIG.buffer_packets_per_vc(2) == 195
        assert PAPER_CONFIG.buffer_packets_per_vc(4) == 97

    def test_buffer_at_least_one_packet(self):
        assert PAPER_CONFIG.buffer_packets_per_vc(10_000) == 1

    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            SimConfig(link_bandwidth_gbps=0)
        with pytest.raises(ValueError):
            SimConfig(packet_bytes=0)
        with pytest.raises(ValueError):
            SimConfig(buffer_bytes_per_port=10, packet_bytes=256)
        with pytest.raises(ValueError):
            SimConfig(link_latency_ns=-1)
        with pytest.raises(ValueError):
            PAPER_CONFIG.buffer_packets_per_vc(0)

    def test_zero_load_latency(self):
        c = PAPER_CONFIG
        # 2-hop route: NIC leg + 3 router traversals (incl. ejection leg).
        expected = (20.48 + 50) + 3 * (100 + 20.48 + 50)
        assert c.zero_load_latency_ns(2) == pytest.approx(expected)

    def test_frozen(self):
        with pytest.raises(Exception):
            PAPER_CONFIG.packet_bytes = 512  # type: ignore[misc]
