"""Tests for the comparison topologies: 2D HyperX, Fat-Trees, Dragonfly."""

import pytest

from repro.topology import Dragonfly, FatTree2L, FatTree3L, HyperX2D
from repro.topology.validate import validate_topology


class TestHyperX:
    def test_balanced_from_radix(self):
        t = HyperX2D.balanced(9)
        assert t.s1 == t.s2 == 4 and t.p == 3
        assert t.num_nodes == HyperX2D.expected_num_nodes(9) == 48

    def test_balanced_rejects_bad_radix(self):
        with pytest.raises(ValueError):
            HyperX2D.balanced(10)

    def test_rejects_tiny_dims(self):
        with pytest.raises(ValueError):
            HyperX2D(1, 4)

    def test_diameter_two(self, hyperx):
        assert hyperx.diameter() == 2

    def test_rectangular(self):
        t = HyperX2D(3, 5, p=2)
        assert t.num_routers == 15
        assert t.degree(0) == (3 - 1) + (5 - 1)

    def test_row_column_connectivity(self, hyperx):
        for r in range(hyperx.num_routers):
            i, j = hyperx.coords(r)
            for n in hyperx.neighbors(r):
                ni, nj = hyperx.coords(n)
                assert (ni == i) != (nj == j), "neighbors share exactly one coordinate"

    def test_validates(self, hyperx):
        report = validate_topology(hyperx)
        assert report.ok, report.problems

    def test_valiant_intermediates_all(self, hyperx):
        assert hyperx.valiant_intermediates() == list(range(hyperx.num_routers))

    def test_expected_nodes_rejects_bad_radix(self):
        with pytest.raises(ValueError):
            HyperX2D.expected_num_nodes(10)


class TestFatTree2L:
    def test_counts(self):
        t = FatTree2L(8)
        assert t.num_nodes == FatTree2L.expected_num_nodes(8) == 32
        assert t.num_routers == 12  # r + r/2
        assert {t.radix(r) for r in range(t.num_routers)} == {8}

    def test_rejects_odd_radix(self):
        with pytest.raises(ValueError):
            FatTree2L(7)

    def test_complete_bipartite(self, ft2):
        for leaf in range(ft2.num_l1):
            assert set(ft2.neighbors(leaf)) == set(range(ft2.num_l1, ft2.num_routers))

    def test_validates(self, ft2):
        report = validate_topology(ft2)
        assert report.ok, report.problems

    def test_link_classes(self, ft2):
        from repro.topology.base import LINK_DOWN, LINK_UP

        spine = ft2.num_l1
        assert ft2.link_class(0, spine) == LINK_UP
        assert ft2.link_class(spine, 0) == LINK_DOWN


class TestFatTree3L:
    def test_counts(self):
        t = FatTree3L(4)
        assert t.num_nodes == FatTree3L.expected_num_nodes(4) == 16
        # 5r^2/4 routers.
        assert t.num_routers == 20
        assert {t.radix(r) for r in range(t.num_routers)} == {4}

    def test_cost_5_ports_3_links(self):
        t = FatTree3L(8)
        assert t.ports_per_node() == pytest.approx(5.0)
        assert t.links_per_node() == pytest.approx(3.0)

    def test_diameter_four(self, ft3):
        assert ft3.endpoint_diameter() == 4

    def test_rejects_odd_radix(self):
        with pytest.raises(ValueError):
            FatTree3L(5)

    def test_levels(self, ft3):
        assert ft3.level(0) == 0
        assert ft3.level(ft3.num_edge) == 1
        assert ft3.level(ft3.num_edge + ft3.num_agg) == 2

    def test_validates_with_relaxed_cost(self, ft3):
        report = validate_topology(
            ft3, expect_diameter=4, max_ports_per_node=5.1, max_links_per_node=3.1
        )
        assert report.ok, report.problems


class TestDragonfly:
    def test_counts(self, dragonfly):
        # p=2, a=4, h=2: g = 9 groups of 4 routers.
        assert dragonfly.g == 9
        assert dragonfly.num_routers == 36
        assert dragonfly.num_nodes == 72

    def test_diameter_three(self, dragonfly):
        assert dragonfly.diameter() == 3

    def test_every_group_pair_connected(self, dragonfly):
        seen = set()
        for u, v in dragonfly.edges():
            gu, gv = dragonfly.group_of(u), dragonfly.group_of(v)
            if gu != gv:
                seen.add((min(gu, gv), max(gu, gv)))
        g = dragonfly.g
        assert len(seen) == g * (g - 1) // 2

    def test_intra_group_full_mesh(self, dragonfly):
        a = dragonfly.a
        for r in range(a):  # group 0
            peers = {n for n in dragonfly.neighbors(r) if dragonfly.group_of(n) == 0}
            assert peers == set(range(a)) - {r}

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            Dragonfly(0)
        with pytest.raises(ValueError):
            Dragonfly(2, a=0)

    def test_coords(self, dragonfly):
        assert dragonfly.coords(5) == (1, 1)
