"""Integration tests of the network simulator (Sec. 4.1 substrate).

These exercise full packet lifecycles: conservation, latency floors,
throughput ceilings, backpressure, VC provisioning and the congestion
interface used by UGAL-L.
"""

import pytest

from repro.routing import IndirectRandomRouting, MinimalRouting, UGALRouting
from repro.sim import Network, PAPER_CONFIG, SimConfig
from repro.topology import MLFM, OFT, SlimFly
from repro.traffic import ShiftTraffic, UniformRandom


@pytest.fixture(scope="module")
def sf4():
    return SlimFly(4)


class TestWiring:
    def test_vc_count_follows_routing(self, sf4):
        assert Network(sf4, MinimalRouting(sf4)).num_vcs == 2
        assert Network(sf4, IndirectRandomRouting(sf4)).num_vcs == 4

    def test_router_and_nic_counts(self, sf4):
        net = Network(sf4, MinimalRouting(sf4))
        assert len(net.routers) == sf4.num_routers
        assert len(net.nics) == sf4.num_nodes

    def test_output_ports_cover_neighbors_and_nodes(self, sf4):
        net = Network(sf4, MinimalRouting(sf4))
        for r in range(sf4.num_routers):
            assert len(net.routers[r].out) == sf4.degree(r) + sf4.nodes_attached(r)

    def test_congestion_interface(self, sf4):
        net = Network(sf4, MinimalRouting(sf4))
        n = sf4.neighbors(0)[0]
        assert net.queue_len(0, n) == 0
        assert net.queue_capacity() == PAPER_CONFIG.buffer_packets_per_port


class TestConservation:
    @pytest.mark.parametrize("load", [0.3, 0.8])
    def test_every_packet_delivered_once(self, sf4, load):
        net = Network(sf4, MinimalRouting(sf4, seed=1))
        net.run_synthetic(
            UniformRandom(sf4.num_nodes), load=load,
            warmup_ns=500, measure_ns=2000, seed=7, drain=True,
        )
        assert net.stats.injected_total == net.stats.ejected_total
        assert net.stats.injected_total > 0

    def test_conservation_under_indirect(self, sf4):
        net = Network(sf4, IndirectRandomRouting(sf4, seed=1))
        net.run_synthetic(
            UniformRandom(sf4.num_nodes), load=0.4,
            warmup_ns=500, measure_ns=2000, seed=7, drain=True,
        )
        assert net.stats.injected_total == net.stats.ejected_total

    def test_conservation_mlfm_ugal(self, mlfm4):
        net = Network(mlfm4, UGALRouting(mlfm4, seed=1))
        net.run_synthetic(
            UniformRandom(mlfm4.num_nodes), load=0.6,
            warmup_ns=500, measure_ns=2000, seed=7, drain=True,
        )
        assert net.stats.injected_total == net.stats.ejected_total


class TestLatency:
    def test_latency_at_least_zero_load(self, sf4):
        net = Network(sf4, MinimalRouting(sf4, seed=1))
        stats = net.run_synthetic(
            UniformRandom(sf4.num_nodes), load=0.05,
            warmup_ns=500, measure_ns=3000, seed=7,
        )
        floor = PAPER_CONFIG.zero_load_latency_ns(1)  # >= 1-hop minimum
        assert stats.mean_latency_ns is not None
        assert stats.mean_latency_ns >= floor * 0.99

    def test_latency_increases_with_load(self, sf4):
        lats = []
        for load in (0.1, 0.9):
            net = Network(sf4, MinimalRouting(sf4, seed=1))
            stats = net.run_synthetic(
                UniformRandom(sf4.num_nodes), load=load,
                warmup_ns=500, measure_ns=3000, seed=7,
            )
            lats.append(stats.mean_latency_ns)
        assert lats[1] > lats[0]

    def test_intra_router_latency_has_no_network_hops(self, sf4):
        # Shift by 1 within a router (p = 6 for q = 4): one router
        # traversal only.
        assert sf4.p >= 2
        net = Network(sf4, MinimalRouting(sf4, seed=1))
        stats = net.run_synthetic(
            ShiftTraffic(sf4.num_nodes, 1), load=0.1,
            warmup_ns=500, measure_ns=2000, seed=7,
        )
        # Many destinations are on the same router; mean latency must
        # sit well below the 2-hop zero-load latency.
        assert stats.mean_latency_ns < PAPER_CONFIG.zero_load_latency_ns(2)


class TestThroughput:
    def test_throughput_matches_offered_below_saturation(self, sf4):
        net = Network(sf4, MinimalRouting(sf4, seed=1))
        stats = net.run_synthetic(
            UniformRandom(sf4.num_nodes), load=0.4,
            warmup_ns=1000, measure_ns=4000, seed=7,
        )
        assert stats.throughput == pytest.approx(0.4, rel=0.08)

    def test_throughput_never_exceeds_one(self, sf4):
        net = Network(sf4, MinimalRouting(sf4, seed=1))
        stats = net.run_synthetic(
            UniformRandom(sf4.num_nodes), load=1.0,
            warmup_ns=1000, measure_ns=4000, seed=7,
        )
        assert stats.throughput <= 1.0

    def test_deterministic_arrival_process(self, sf4):
        net = Network(sf4, MinimalRouting(sf4, seed=1))
        stats = net.run_synthetic(
            UniformRandom(sf4.num_nodes), load=0.5,
            warmup_ns=1000, measure_ns=3000, seed=7, arrival="deterministic",
        )
        assert stats.throughput == pytest.approx(0.5, rel=0.08)

    def test_rejects_bad_load(self, sf4):
        net = Network(sf4, MinimalRouting(sf4))
        with pytest.raises(ValueError):
            net.run_synthetic(UniformRandom(sf4.num_nodes), load=0.0)
        with pytest.raises(ValueError):
            net.run_synthetic(UniformRandom(sf4.num_nodes), load=1.5)

    def test_rejects_bad_arrival(self, sf4):
        net = Network(sf4, MinimalRouting(sf4))
        with pytest.raises(ValueError):
            net.run_synthetic(UniformRandom(sf4.num_nodes), load=0.5, arrival="bursty")


class TestSelfTrafficGuard:
    def test_pattern_self_destination_rejected(self, sf4):
        class Bad:
            def pick_destination(self, src, rng):
                return src

        net = Network(sf4, MinimalRouting(sf4))
        with pytest.raises(ValueError):
            net.run_synthetic(Bad(), load=0.5, warmup_ns=100, measure_ns=500)


class TestExchanges:
    def test_small_exchange_completes(self, mlfm4):
        from repro.traffic import AllToAll

        net = Network(mlfm4, MinimalRouting(mlfm4, seed=1))
        res = net.run_exchange(AllToAll(mlfm4.num_nodes, message_bytes=256))
        assert res["packets"] == mlfm4.num_nodes * (mlfm4.num_nodes - 1)
        assert 0 < res["effective_throughput"] <= 1.0

    def test_exchange_with_no_traffic_rejected(self, mlfm4):
        class Empty:
            def node_messages(self, node):
                return []

        net = Network(mlfm4, MinimalRouting(mlfm4))
        with pytest.raises(ValueError):
            net.run_exchange(Empty())

    def test_event_budget_detects_incompleteness(self, mlfm4):
        from repro.traffic import AllToAll

        net = Network(mlfm4, MinimalRouting(mlfm4, seed=1))
        with pytest.raises(RuntimeError):
            net.run_exchange(AllToAll(mlfm4.num_nodes, message_bytes=256), max_events=100)

    def test_interleaved_exchange_completes(self, mlfm4):
        from repro.traffic import NearestNeighbor3D

        nn = NearestNeighbor3D(mlfm4.num_nodes, message_bytes=512, dims=(4, 5, 4))
        net = Network(mlfm4, MinimalRouting(mlfm4, seed=1))
        res = net.run_exchange(nn)
        assert res["total_bytes"] == nn.total_bytes


class TestCustomConfig:
    def test_smaller_packets(self, sf4):
        cfg = SimConfig(packet_bytes=128)
        net = Network(sf4, MinimalRouting(sf4, seed=1), cfg)
        stats = net.run_synthetic(
            UniformRandom(sf4.num_nodes), load=0.5,
            warmup_ns=500, measure_ns=2000, seed=7,
        )
        assert stats.throughput == pytest.approx(0.5, rel=0.1)

    def test_tiny_buffers_still_conserve(self, sf4):
        cfg = SimConfig(buffer_bytes_per_port=1024)  # 4 packets/port
        net = Network(sf4, MinimalRouting(sf4, seed=1), cfg)
        net.run_synthetic(
            UniformRandom(sf4.num_nodes), load=0.8,
            warmup_ns=500, measure_ns=2000, seed=7, drain=True,
        )
        assert net.stats.injected_total == net.stats.ejected_total


class TestSingleUse:
    def test_second_run_rejected(self, sf4):
        net = Network(sf4, MinimalRouting(sf4, seed=1))
        net.run_synthetic(UniformRandom(sf4.num_nodes), load=0.2,
                          warmup_ns=200, measure_ns=600, seed=3)
        with pytest.raises(RuntimeError):
            net.run_synthetic(UniformRandom(sf4.num_nodes), load=0.2,
                              warmup_ns=200, measure_ns=600, seed=3)

    def test_exchange_after_synthetic_rejected(self, sf4):
        from repro.traffic import AllToAll

        net = Network(sf4, MinimalRouting(sf4, seed=1))
        net.run_synthetic(UniformRandom(sf4.num_nodes), load=0.2,
                          warmup_ns=200, measure_ns=600, seed=3)
        with pytest.raises(RuntimeError):
            net.run_exchange(AllToAll(sf4.num_nodes, message_bytes=256))


class TestPacketize:
    """Unit tests for the exchange packetisation helpers."""

    @staticmethod
    def _run(fn, messages, pkt):
        from repro.sim.network import _packetize, _packetize_interleaved

        impl = _packetize if fn == "ordered" else _packetize_interleaved
        return list(impl(messages, pkt))

    @pytest.mark.parametrize("fn", ["ordered", "interleaved"])
    def test_chunks_reassemble_to_message_sizes(self, fn):
        messages = [(3, 1000), (7, 256), (9, 257)]
        pkts = self._run(fn, messages, 256)
        totals = {}
        for dst, chunk, msg_id in pkts:
            assert 0 < chunk <= 256
            assert dst == messages[msg_id][0]
            totals[msg_id] = totals.get(msg_id, 0) + chunk
        assert totals == {0: 1000, 1: 256, 2: 257}

    @pytest.mark.parametrize("fn", ["ordered", "interleaved"])
    def test_remainder_is_final_chunk(self, fn):
        # 1000 = 3*256 + 232: exactly one short tail packet.
        pkts = [c for _, c, m in self._run(fn, [(0, 1000)], 256)]
        assert sorted(pkts, reverse=True) == [256, 256, 256, 232]
        assert pkts[-1] == 232

    @pytest.mark.parametrize("fn", ["ordered", "interleaved"])
    def test_exact_multiple_has_no_tail(self, fn):
        pkts = self._run(fn, [(1, 512)], 256)
        assert [c for _, c, _ in pkts] == [256, 256]

    @pytest.mark.parametrize("fn", ["ordered", "interleaved"])
    def test_zero_size_message_emits_nothing_but_keeps_ids_stable(self, fn):
        # msg 1 has zero bytes; ids of later messages must not shift.
        pkts = self._run(fn, [(4, 256), (5, 0), (6, 256)], 256)
        assert [(d, m) for d, _, m in pkts] == [(4, 0), (6, 2)]

    @pytest.mark.parametrize("fn", ["ordered", "interleaved"])
    def test_empty_message_list(self, fn):
        assert self._run(fn, [], 256) == []

    def test_ordered_is_strictly_sequential(self):
        pkts = self._run("ordered", [(0, 600), (1, 600)], 256)
        assert [m for _, _, m in pkts] == [0, 0, 0, 1, 1, 1]

    def test_interleaved_round_robins_across_messages(self):
        pkts = self._run("interleaved", [(0, 600), (1, 300)], 256)
        # Rounds: (m0, m1), (m0, m1-tail), (m0-tail).
        assert [m for _, _, m in pkts] == [0, 1, 0, 1, 0]
        assert [c for _, c, _ in pkts] == [256, 256, 256, 44, 88]

    def test_interleaved_drops_finished_messages_from_rotation(self):
        pkts = self._run("interleaved", [(0, 256), (1, 1024)], 256)
        assert [m for _, _, m in pkts] == [1 if i else 0 for i in range(5)]

    @pytest.mark.parametrize("fn", ["ordered", "interleaved"])
    def test_single_byte_messages(self, fn):
        pkts = self._run(fn, [(2, 1), (3, 1)], 256)
        assert [(d, c) for d, c, _ in pkts] == [(2, 1), (3, 1)]
