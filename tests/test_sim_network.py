"""Integration tests of the network simulator (Sec. 4.1 substrate).

These exercise full packet lifecycles: conservation, latency floors,
throughput ceilings, backpressure, VC provisioning and the congestion
interface used by UGAL-L.
"""

import pytest

from repro.routing import IndirectRandomRouting, MinimalRouting, UGALRouting
from repro.sim import Network, PAPER_CONFIG, SimConfig
from repro.topology import MLFM, OFT, SlimFly
from repro.traffic import ShiftTraffic, UniformRandom


@pytest.fixture(scope="module")
def sf4():
    return SlimFly(4)


class TestWiring:
    def test_vc_count_follows_routing(self, sf4):
        assert Network(sf4, MinimalRouting(sf4)).num_vcs == 2
        assert Network(sf4, IndirectRandomRouting(sf4)).num_vcs == 4

    def test_router_and_nic_counts(self, sf4):
        net = Network(sf4, MinimalRouting(sf4))
        assert len(net.routers) == sf4.num_routers
        assert len(net.nics) == sf4.num_nodes

    def test_output_ports_cover_neighbors_and_nodes(self, sf4):
        net = Network(sf4, MinimalRouting(sf4))
        for r in range(sf4.num_routers):
            assert len(net.routers[r].out) == sf4.degree(r) + sf4.nodes_attached(r)

    def test_congestion_interface(self, sf4):
        net = Network(sf4, MinimalRouting(sf4))
        n = sf4.neighbors(0)[0]
        assert net.queue_len(0, n) == 0
        assert net.queue_capacity() == PAPER_CONFIG.buffer_packets_per_port


class TestConservation:
    @pytest.mark.parametrize("load", [0.3, 0.8])
    def test_every_packet_delivered_once(self, sf4, load):
        net = Network(sf4, MinimalRouting(sf4, seed=1))
        net.run_synthetic(
            UniformRandom(sf4.num_nodes), load=load,
            warmup_ns=500, measure_ns=2000, seed=7, drain=True,
        )
        assert net.stats.injected_total == net.stats.ejected_total
        assert net.stats.injected_total > 0

    def test_conservation_under_indirect(self, sf4):
        net = Network(sf4, IndirectRandomRouting(sf4, seed=1))
        net.run_synthetic(
            UniformRandom(sf4.num_nodes), load=0.4,
            warmup_ns=500, measure_ns=2000, seed=7, drain=True,
        )
        assert net.stats.injected_total == net.stats.ejected_total

    def test_conservation_mlfm_ugal(self, mlfm4):
        net = Network(mlfm4, UGALRouting(mlfm4, seed=1))
        net.run_synthetic(
            UniformRandom(mlfm4.num_nodes), load=0.6,
            warmup_ns=500, measure_ns=2000, seed=7, drain=True,
        )
        assert net.stats.injected_total == net.stats.ejected_total


class TestLatency:
    def test_latency_at_least_zero_load(self, sf4):
        net = Network(sf4, MinimalRouting(sf4, seed=1))
        stats = net.run_synthetic(
            UniformRandom(sf4.num_nodes), load=0.05,
            warmup_ns=500, measure_ns=3000, seed=7,
        )
        floor = PAPER_CONFIG.zero_load_latency_ns(1)  # >= 1-hop minimum
        assert stats.mean_latency_ns is not None
        assert stats.mean_latency_ns >= floor * 0.99

    def test_latency_increases_with_load(self, sf4):
        lats = []
        for load in (0.1, 0.9):
            net = Network(sf4, MinimalRouting(sf4, seed=1))
            stats = net.run_synthetic(
                UniformRandom(sf4.num_nodes), load=load,
                warmup_ns=500, measure_ns=3000, seed=7,
            )
            lats.append(stats.mean_latency_ns)
        assert lats[1] > lats[0]

    def test_intra_router_latency_has_no_network_hops(self, sf4):
        # Shift by 1 within a router (p = 6 for q = 4): one router
        # traversal only.
        assert sf4.p >= 2
        net = Network(sf4, MinimalRouting(sf4, seed=1))
        stats = net.run_synthetic(
            ShiftTraffic(sf4.num_nodes, 1), load=0.1,
            warmup_ns=500, measure_ns=2000, seed=7,
        )
        # Many destinations are on the same router; mean latency must
        # sit well below the 2-hop zero-load latency.
        assert stats.mean_latency_ns < PAPER_CONFIG.zero_load_latency_ns(2)


class TestThroughput:
    def test_throughput_matches_offered_below_saturation(self, sf4):
        net = Network(sf4, MinimalRouting(sf4, seed=1))
        stats = net.run_synthetic(
            UniformRandom(sf4.num_nodes), load=0.4,
            warmup_ns=1000, measure_ns=4000, seed=7,
        )
        assert stats.throughput == pytest.approx(0.4, rel=0.08)

    def test_throughput_never_exceeds_one(self, sf4):
        net = Network(sf4, MinimalRouting(sf4, seed=1))
        stats = net.run_synthetic(
            UniformRandom(sf4.num_nodes), load=1.0,
            warmup_ns=1000, measure_ns=4000, seed=7,
        )
        assert stats.throughput <= 1.0

    def test_deterministic_arrival_process(self, sf4):
        net = Network(sf4, MinimalRouting(sf4, seed=1))
        stats = net.run_synthetic(
            UniformRandom(sf4.num_nodes), load=0.5,
            warmup_ns=1000, measure_ns=3000, seed=7, arrival="deterministic",
        )
        assert stats.throughput == pytest.approx(0.5, rel=0.08)

    def test_rejects_bad_load(self, sf4):
        net = Network(sf4, MinimalRouting(sf4))
        with pytest.raises(ValueError):
            net.run_synthetic(UniformRandom(sf4.num_nodes), load=0.0)
        with pytest.raises(ValueError):
            net.run_synthetic(UniformRandom(sf4.num_nodes), load=1.5)

    def test_rejects_bad_arrival(self, sf4):
        net = Network(sf4, MinimalRouting(sf4))
        with pytest.raises(ValueError):
            net.run_synthetic(UniformRandom(sf4.num_nodes), load=0.5, arrival="bursty")


class TestSelfTrafficGuard:
    def test_pattern_self_destination_rejected(self, sf4):
        class Bad:
            def pick_destination(self, src, rng):
                return src

        net = Network(sf4, MinimalRouting(sf4))
        with pytest.raises(ValueError):
            net.run_synthetic(Bad(), load=0.5, warmup_ns=100, measure_ns=500)


class TestExchanges:
    def test_small_exchange_completes(self, mlfm4):
        from repro.traffic import AllToAll

        net = Network(mlfm4, MinimalRouting(mlfm4, seed=1))
        res = net.run_exchange(AllToAll(mlfm4.num_nodes, message_bytes=256))
        assert res["packets"] == mlfm4.num_nodes * (mlfm4.num_nodes - 1)
        assert 0 < res["effective_throughput"] <= 1.0

    def test_exchange_with_no_traffic_rejected(self, mlfm4):
        class Empty:
            def node_messages(self, node):
                return []

        net = Network(mlfm4, MinimalRouting(mlfm4))
        with pytest.raises(ValueError):
            net.run_exchange(Empty())

    def test_event_budget_detects_incompleteness(self, mlfm4):
        from repro.traffic import AllToAll

        net = Network(mlfm4, MinimalRouting(mlfm4, seed=1))
        with pytest.raises(RuntimeError):
            net.run_exchange(AllToAll(mlfm4.num_nodes, message_bytes=256), max_events=100)

    def test_interleaved_exchange_completes(self, mlfm4):
        from repro.traffic import NearestNeighbor3D

        nn = NearestNeighbor3D(mlfm4.num_nodes, message_bytes=512, dims=(4, 5, 4))
        net = Network(mlfm4, MinimalRouting(mlfm4, seed=1))
        res = net.run_exchange(nn)
        assert res["total_bytes"] == nn.total_bytes


class TestCustomConfig:
    def test_smaller_packets(self, sf4):
        cfg = SimConfig(packet_bytes=128)
        net = Network(sf4, MinimalRouting(sf4, seed=1), cfg)
        stats = net.run_synthetic(
            UniformRandom(sf4.num_nodes), load=0.5,
            warmup_ns=500, measure_ns=2000, seed=7,
        )
        assert stats.throughput == pytest.approx(0.5, rel=0.1)

    def test_tiny_buffers_still_conserve(self, sf4):
        cfg = SimConfig(buffer_bytes_per_port=1024)  # 4 packets/port
        net = Network(sf4, MinimalRouting(sf4, seed=1), cfg)
        net.run_synthetic(
            UniformRandom(sf4.num_nodes), load=0.8,
            warmup_ns=500, measure_ns=2000, seed=7, drain=True,
        )
        assert net.stats.injected_total == net.stats.ejected_total


class TestSingleUse:
    def test_second_run_rejected(self, sf4):
        net = Network(sf4, MinimalRouting(sf4, seed=1))
        net.run_synthetic(UniformRandom(sf4.num_nodes), load=0.2,
                          warmup_ns=200, measure_ns=600, seed=3)
        with pytest.raises(RuntimeError):
            net.run_synthetic(UniformRandom(sf4.num_nodes), load=0.2,
                              warmup_ns=200, measure_ns=600, seed=3)

    def test_exchange_after_synthetic_rejected(self, sf4):
        from repro.traffic import AllToAll

        net = Network(sf4, MinimalRouting(sf4, seed=1))
        net.run_synthetic(UniformRandom(sf4.num_nodes), load=0.2,
                          warmup_ns=200, measure_ns=600, seed=3)
        with pytest.raises(RuntimeError):
            net.run_exchange(AllToAll(sf4.num_nodes, message_bytes=256))
