"""End-to-end service tests over a real socket, in process.

The app runs on a background thread with the inline (serial) scheduler
so no child processes fork; probe jobs keep things fast, and one real
sweep job pins the served payload to the serial-path golden.
"""

from __future__ import annotations

import asyncio
import contextlib
import http.client
import json
import threading
import time

import pytest

from repro.orchestrate.job import Job, run_job
from repro.orchestrate.store import ResultStore
from repro.serve.server import ServeApp, default_scheduler_factory
from repro.serve.tenants import TenantQuota

SIM_JOB = {
    "kind": "sweep",
    "topology": "sf:q=5,p=floor",
    "routing": "min",
    "pattern": "uniform",
    "load": 0.3,
    "seed": 0,
    "warmup_ns": 300.0,
    "measure_ns": 1200.0,
}


def probe(value: int = 0, seconds: float = 0.0) -> dict:
    params = {"value": value}
    if seconds:
        params.update(behavior="sleep", seconds=seconds)
    return {"kind": "probe", "params": params}


class LiveServer:
    """ServeApp on a background thread, plus a tiny HTTP client."""

    def __init__(self, tmp_path, max_queued=8, max_running=2, max_workers=2):
        self.store = ResultStore(tmp_path / "cache")
        self.executions = []  # one entry per scheduler instantiation
        base = default_scheduler_factory(inline=True)

        def counting_factory():
            self.executions.append(1)
            return base()

        self.app = ServeApp(
            store=self.store,
            spool_dir=tmp_path / "spool",
            quota=TenantQuota(max_queued=max_queued, max_running=max_running),
            min_workers=1,
            max_workers=max_workers,
            scheduler_factory=counting_factory,
            autoscale_interval_s=0.05,
            tail_interval_s=0.02,
        )
        self.port = None
        self._ready = threading.Event()
        self.thread = threading.Thread(
            target=lambda: asyncio.run(self.app.run("127.0.0.1", 0, ready=self._on_ready)),
            daemon=True,
        )

    def _on_ready(self, host, port):
        self.port = port
        self._ready.set()

    def start(self):
        self.thread.start()
        assert self._ready.wait(10), "server did not come up"
        return self

    def drain(self, timeout=20):
        self.app._loop.call_soon_threadsafe(self.app.begin_drain)
        self.thread.join(timeout=timeout)
        assert not self.thread.is_alive(), "server did not drain in time"

    def stop(self):
        if self.thread.is_alive():
            # Force-stop: second begin_drain call shuts down immediately.
            for _ in range(2):
                with contextlib.suppress(Exception):
                    self.app._loop.call_soon_threadsafe(self.app.begin_drain)
            self.thread.join(timeout=10)

    # -- client ------------------------------------------------------------

    def req(self, method, path, body=None, tenant=None):
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=30)
        headers = {"X-Tenant": tenant} if tenant else {}
        payload = None
        if body is not None:
            payload = json.dumps(body)
            headers["Content-Type"] = "application/json"
        conn.request(method, path, body=payload, headers=headers)
        resp = conn.getresponse()
        data = resp.read()
        headers_out = dict(resp.getheaders())
        conn.close()
        return resp.status, json.loads(data) if data else None, headers_out

    def submit(self, body, tenant="t1"):
        status, record, _ = self.req("POST", "/v1/jobs", body, tenant=tenant)
        assert status in (200, 202), (status, record)
        return record

    def wait_done(self, record_id, timeout=30):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            _s, record, _h = self.req("GET", f"/v1/jobs/{record_id}")
            if record["status"] in ("done", "failed"):
                return record
            time.sleep(0.05)
        raise AssertionError(f"{record_id} did not finish within {timeout}s")

    def stream_events(self, record_id, timeout=30):
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=timeout)
        conn.request("GET", f"/v1/jobs/{record_id}/events")
        resp = conn.getresponse()
        events = []
        for raw in resp:
            if not raw.strip():
                continue
            events.append(json.loads(raw))
            if events[-1].get("type") == "record_done":
                break
        conn.close()
        return events


@pytest.fixture
def server(tmp_path):
    live = LiveServer(tmp_path).start()
    yield live
    live.stop()


class TestLifecycle:
    def test_submit_poll_cache(self, server):
        record = server.submit(probe(41))
        assert record["status"] in ("queued", "running")
        done = server.wait_done(record["id"])
        assert done["status"] == "done"
        assert done["result"]["payload"]["value"] == 41
        assert len(server.executions) == 1

        # Identical resubmission after completion: served from the store,
        # terminal immediately, no new execution.
        status, again, _ = server.req("POST", "/v1/jobs", probe(41), tenant="t2")
        assert status == 200
        assert again["cached"] is True
        assert again["status"] == "done"
        assert again["result"]["payload"]["value"] == 41
        assert len(server.executions) == 1

    def test_concurrent_identical_posts_execute_once(self, server):
        job = probe(7, seconds=0.4)
        records, barrier = [None, None], threading.Barrier(2)

        def post(slot):
            barrier.wait()
            records[slot] = server.submit(job, tenant=f"client{slot}")

        threads = [threading.Thread(target=post, args=(i,)) for i in (0, 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=30)

        assert all(records)
        assert sum(1 for r in records if r["coalesced"]) == 1
        finished = [server.wait_done(r["id"]) for r in records]
        assert all(r["status"] == "done" for r in finished)
        payloads = [r["result"]["payload"] for r in finished]
        assert payloads[0] == payloads[1]
        assert len(server.executions) == 1  # the tentpole invariant

        _s, stats, _h = server.req("GET", "/v1/stats")
        assert stats["metrics"]["coalesced"] == 1
        assert stats["metrics"]["misses"] == 1

    def test_sweep_result_matches_serial_golden(self, server):
        record = server.wait_done(server.submit(SIM_JOB)["id"], timeout=120)
        assert record["status"] == "done"
        golden = run_job(Job.from_dict(dict(SIM_JOB))).payload
        assert record["result"]["payload"] == golden

    def test_campaign_list_submission(self, server):
        body = [probe(1), probe(2), probe(1)]  # third coalesces or caches
        status, resp, _ = server.req("POST", "/v1/jobs", body, tenant="camp")
        assert status == 200
        assert resp["accepted"] == 3
        assert resp["rejected"] == 0
        ids = [item["id"] for item in resp["jobs"]]
        results = [server.wait_done(record_id) for record_id in ids]
        assert [r["result"]["payload"]["value"] for r in results] == [1, 2, 1]
        assert len(server.executions) == 2  # duplicate never re-ran

    def test_failed_job_reports_error(self, server):
        record = server.submit({"kind": "probe", "params": {"behavior": "raise"}})
        done = server.wait_done(record["id"])
        assert done["status"] == "failed"
        assert done["error"]


class TestQuota:
    def test_over_quota_tenant_gets_429(self, tmp_path):
        server = LiveServer(tmp_path, max_queued=1, max_running=1).start()
        try:
            server.submit(probe(1, seconds=1.0), tenant="greedy")  # runs
            server.submit(probe(2, seconds=1.0), tenant="greedy")  # queues
            status, body, _ = server.req(
                "POST", "/v1/jobs", probe(3), tenant="greedy"
            )
            assert status == 429
            assert "quota" in body["error"]
            # Another tenant is unaffected.
            other = server.submit(probe(4), tenant="polite")
            assert server.wait_done(other["id"])["status"] == "done"
        finally:
            server.stop()


class TestEvents:
    def test_stream_carries_scheduler_telemetry(self, server):
        record = server.submit(probe(5, seconds=0.3))
        events = server.stream_events(record["id"])
        types = [e["type"] for e in events]
        assert types[0] == "record"
        assert "execution_start" in types
        assert "job_done" in types
        assert types[-1] == "record_done"
        assert events[-1]["status"] == "done"

    def test_stream_for_cached_record_terminates(self, server):
        first = server.submit(probe(6))
        server.wait_done(first["id"])
        cached = server.submit(probe(6), tenant="other")
        events = server.stream_events(cached["id"])
        assert events[-1]["type"] == "record_done"
        assert events[-1]["cached"] is True


class TestResultsAndErrors:
    def test_result_by_hash(self, server):
        record = server.submit(probe(8))
        done = server.wait_done(record["id"])
        status, entry, _ = server.req("GET", f"/v1/results/{done['hash']}")
        assert status == 200
        assert entry["result"]["payload"]["value"] == 8

    def test_unknown_hash_404_and_malformed_400(self, server):
        status, _, _ = server.req("GET", "/v1/results/" + "0" * 64)
        assert status == 404
        status, _, _ = server.req("GET", "/v1/results/not-a-hash")
        assert status == 400

    def test_unknown_record_404(self, server):
        status, body, _ = server.req("GET", "/v1/jobs/r-999999")
        assert status == 404
        assert "no such job" in body["error"]

    def test_wrong_method_405_with_allow(self, server):
        status, _, headers = server.req("DELETE", "/v1/jobs/r-000001")
        assert status == 405
        assert headers.get("Allow") == "GET"

    def test_bad_json_body_400(self, server):
        conn = http.client.HTTPConnection("127.0.0.1", server.port, timeout=10)
        conn.request("POST", "/v1/jobs", body="{nope",
                     headers={"Content-Type": "application/json"})
        resp = conn.getresponse()
        assert resp.status == 400
        conn.close()

    def test_invalid_tenant_400(self, server):
        status, body, _ = server.req(
            "POST", "/v1/jobs", probe(1), tenant="no spaces allowed"
        )
        assert status == 400

    def test_healthz_and_stats_shape(self, server):
        status, health, _ = server.req("GET", "/v1/healthz")
        assert (status, health["status"]) == (200, "ok")
        _s, stats, _h = server.req("GET", "/v1/stats")
        assert {"queue", "workers", "metrics", "draining", "restored"} <= set(stats)
        assert stats["workers"]["min"] == 1


class TestDrainRestart:
    def test_drain_persists_queue_and_restart_recovers(self, tmp_path):
        first = LiveServer(tmp_path, max_queued=8, max_running=1).start()
        try:
            running = first.submit(probe(1, seconds=1.0), tenant="a")
            queued = first.submit(probe(2, seconds=0.1), tenant="a")
            first.drain()
        finally:
            first.stop()
        assert first.app.saved_on_drain >= 1
        state_path = first.app.state_path
        assert state_path.exists()
        persisted = json.loads(state_path.read_text())
        record_ids = {
            r["id"] for entry in persisted["entries"] for r in entry["records"]
        }
        assert queued["id"] in record_ids

        # Same spool + store: the queued record comes back under its old
        # id and runs to completion.
        second = LiveServer(tmp_path, max_queued=8, max_running=1).start()
        try:
            _s, stats, _h = second.req("GET", "/v1/stats")
            assert stats["restored"] >= 1
            done = second.wait_done(queued["id"])
            assert done["status"] == "done"
            assert done["result"]["payload"]["value"] == 2
        finally:
            second.stop()

    def test_draining_server_rejects_submissions_with_503(self, tmp_path):
        server = LiveServer(tmp_path, max_running=1).start()
        try:
            server.submit(probe(1, seconds=1.5))
            server.app._loop.call_soon_threadsafe(server.app.begin_drain)
            deadline = time.monotonic() + 5
            status = None
            while time.monotonic() < deadline and server.thread.is_alive():
                status, _, _ = server.req("POST", "/v1/jobs", probe(9))
                if status == 503:
                    break
                time.sleep(0.05)
            assert status == 503
            server.thread.join(timeout=20)
        finally:
            server.stop()
