"""Tests for the analytic M/D/1 latency model (repro.analysis.queueing)."""

import pytest

from repro.analysis.queueing import md1_wait_ns, mean_minimal_hops, uniform_latency_model
from repro.routing import MinimalRouting
from repro.sim import Network, PAPER_CONFIG
from repro.topology import MLFM, OFT, SlimFly
from repro.traffic import UniformRandom


class TestMD1:
    def test_zero_load_no_wait(self):
        assert md1_wait_ns(0.0, 20.48) == 0.0

    def test_half_load(self):
        # rho/(2(1-rho)) = 0.5 at rho = 0.5.
        assert md1_wait_ns(0.5, 20.0) == pytest.approx(10.0)

    def test_diverges_toward_saturation(self):
        assert md1_wait_ns(0.99, 20.0) > md1_wait_ns(0.9, 20.0) > md1_wait_ns(0.5, 20.0)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            md1_wait_ns(1.0, 20.0)
        with pytest.raises(ValueError):
            md1_wait_ns(-0.1, 20.0)


class TestMeanHops:
    def test_diameter_two_bounds(self, sf5, mlfm4, oft4):
        for topo in (sf5, mlfm4, oft4):
            hops = mean_minimal_hops(topo)
            assert 0.0 < hops <= 2.0

    def test_mlfm_is_almost_two(self, mlfm4):
        # Every inter-router MLFM route is exactly 2 hops; only the
        # intra-router pairs pull the average below 2.
        hops = mean_minimal_hops(mlfm4)
        n, p = mlfm4.num_nodes, mlfm4.p
        intra = mlfm4.num_local_routers * p * (p - 1)
        total = n * (n - 1)
        assert hops == pytest.approx(2.0 * (total - intra) / total)

    def test_sf_below_two(self, sf5):
        # Direct topology: adjacent-router pairs take 1 hop.
        assert mean_minimal_hops(sf5) < 2.0

    def test_sampling_close_to_exact(self, sf5):
        exact = mean_minimal_hops(sf5)
        sampled = mean_minimal_hops(sf5, samples=800, seed=1)
        assert sampled == pytest.approx(exact, rel=0.1)


class TestLatencyModel:
    def test_zero_load_matches_config(self, mlfm4):
        model = uniform_latency_model(mlfm4, 0.0)
        # Nearly all pairs are 2 hops: zero-load close to the config's
        # closed form for 2 hops.
        assert model["total"] == pytest.approx(
            PAPER_CONFIG.zero_load_latency_ns(model["mean_hops"]), rel=0.01
        )
        assert model["queueing"] == 0.0

    def test_monotone_in_load(self, sf5):
        lat = [uniform_latency_model(sf5, l)["total"] for l in (0.1, 0.5, 0.8)]
        assert lat[0] < lat[1] < lat[2]

    def test_rejects_saturated_load(self, sf5):
        with pytest.raises(ValueError):
            uniform_latency_model(sf5, 1.0)

    def test_hops_override(self, sf5):
        doubled = uniform_latency_model(sf5, 0.3, hops=4.0)
        normal = uniform_latency_model(sf5, 0.3)
        assert doubled["total"] > normal["total"]

    @pytest.mark.parametrize("load", [0.2, 0.5, 0.7])
    def test_matches_simulation_at_moderate_load(self, load):
        topo = MLFM(4)
        model = uniform_latency_model(topo, load)
        net = Network(topo, MinimalRouting(topo, seed=1))
        stats = net.run_synthetic(
            UniformRandom(topo.num_nodes), load=load,
            warmup_ns=2000, measure_ns=6000, seed=3,
        )
        assert stats.mean_latency_ns == pytest.approx(model["total"], rel=0.12)
