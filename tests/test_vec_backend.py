"""Equivalence and API tests for the batched simulator backend.

The golden conformance suite pins the batched engine against committed
fingerprints at one operating point; these tests stress the equivalence
where the backends are most likely to drift -- near saturation, where
credit stalls, wake-up elision and arbitration pressure are maximal --
and cover the parts the goldens cannot see: engine API semantics,
finite exchanges and closed-loop workloads, checked runs over random
(unstructured) topologies, and the documented ``events`` asymmetry.
"""

from __future__ import annotations

import pytest

from repro.experiments.configs import configs_for_scale
from repro.routing import MinimalRouting
from repro.sim import Network, SimConfig
from repro.sim.vec.kernel import load_kernel as _load_kernel
from repro.topology import MLFM, SlimFly
from repro.traffic import AllToAll, UniformRandom
from repro.workload.collectives import ring_allgather
from repro.workload.driver import run_workload

#: Result keys that legitimately differ across backends: the batched
#: engine elides bookkeeping events (fewer executed events for the same
#: physics) and wall-clock is wall-clock.
BACKEND_NEUTRAL_EXCLUDES = {"events", "driver_wall_s"}

needs_kernel = pytest.mark.skipif(
    _load_kernel() is None,
    reason="compiled kernel unavailable (no compiler or REPRO_NO_KERNEL set)",
)

#: The struct-of-arrays backends: the pure-Python loop and its compiled
#: twin.  Every equivalence/API test runs over both.
VEC_BACKENDS = ["batched", pytest.param("kernel", marks=needs_kernel)]


def _tiny(key: str):
    return {c.key: c for c in configs_for_scale("tiny")}[key]


def _net(cfg, kind: str, backend: str, check: bool = False) -> Network:
    topo = cfg.topology()
    builder = {"min": cfg.minimal, "inr": cfg.indirect, "ugal": cfg.adaptive}[kind]
    return Network(topo, builder(topo, seed=0),
                   SimConfig(check=check, backend=backend))


def _stats_dict(stats) -> dict:
    return {name: getattr(stats, name) for name in stats.__slots__}


class TestNearSaturationEquivalence:
    """Both backends must agree exactly where contention is heaviest."""

    @pytest.mark.parametrize("vec_backend", VEC_BACKENDS)
    @pytest.mark.parametrize("kind", ["min", "ugal"])
    @pytest.mark.parametrize("load", [0.6, 0.95])
    def test_sweep_matches_object(self, kind, load, vec_backend):
        cfg = _tiny("sf-floor")
        results = {}
        for backend in ("object", vec_backend):
            net = _net(cfg, kind, backend)
            stats = net.run_synthetic(
                UniformRandom(net.topology.num_nodes), load=load,
                warmup_ns=300.0, measure_ns=1200.0, seed=1000, drain=True,
            )
            results[backend] = (
                _stats_dict(stats),
                net.stats.injected_total,
                net.stats.ejected_total,
                sum(nic.credit_stalls for nic in net.nics),
            )
        assert results["object"] == results[vec_backend]

    @pytest.mark.parametrize("vec_backend", VEC_BACKENDS)
    def test_inr_heavy_load_matches_object(self, vec_backend):
        # Indirect routes double the hop count and credit pressure.
        cfg = _tiny("mlfm")
        outs = []
        for backend in ("object", vec_backend):
            net = _net(cfg, "inr", backend)
            stats = net.run_synthetic(
                UniformRandom(net.topology.num_nodes), load=0.8,
                warmup_ns=300.0, measure_ns=1000.0, seed=7, drain=True,
            )
            outs.append((_stats_dict(stats), net.stats.ejected_total))
        assert outs[0] == outs[1]


class TestFiniteRunsEquivalence:
    @pytest.mark.parametrize("vec_backend", VEC_BACKENDS)
    @pytest.mark.parametrize("kind", ["min", "ugal"])
    def test_exchange_matches_object(self, kind, vec_backend):
        cfg = _tiny("sf-floor")
        results = []
        for backend in ("object", vec_backend):
            net = _net(cfg, kind, backend)
            res = net.run_exchange(
                AllToAll(net.topology.num_nodes, message_bytes=512)
            )
            results.append(
                {k: v for k, v in res.items() if k not in BACKEND_NEUTRAL_EXCLUDES}
            )
        assert results[0] == results[1]

    @pytest.mark.parametrize("vec_backend", VEC_BACKENDS)
    def test_workload_matches_object(self, vec_backend):
        cfg = _tiny("sf-floor")
        results = []
        for backend in ("object", vec_backend):
            net = _net(cfg, "ugal", backend)
            wl = ring_allgather(ranks=min(16, net.topology.num_nodes),
                                message_bytes=2048)
            res = run_workload(net, wl)
            results.append(
                {k: v for k, v in res.items() if k not in BACKEND_NEUTRAL_EXCLUDES}
            )
        assert results[0] == results[1]

    def test_batched_executes_fewer_events(self):
        # The elision is the point: same physics, fewer heap events.
        cfg = _tiny("sf-floor")
        events = {}
        for backend in ("object", "batched"):
            net = _net(cfg, "min", backend)
            net.run_synthetic(
                UniformRandom(net.topology.num_nodes), load=0.4,
                warmup_ns=300.0, measure_ns=1200.0, seed=1, drain=True,
            )
            events[backend] = net.engine.events_executed
        assert events["batched"] < events["object"]


class TestCheckedBatchedRuns:
    @pytest.mark.parametrize("backend", VEC_BACKENDS)
    @pytest.mark.parametrize("seed", [0, 3])
    def test_unstructured_topology_audits_pass(self, seed, backend):
        # Random-ish structure off the paper's beaten path: MLFM with a
        # different height plus a SlimFly, both under the audit checker.
        topo = MLFM(4) if seed % 2 == 0 else SlimFly(5, "floor")
        net = Network(topo, MinimalRouting(topo, seed=seed),
                      SimConfig(check=True, backend=backend))
        net.run_synthetic(
            UniformRandom(topo.num_nodes), load=0.5,
            warmup_ns=300.0, measure_ns=1200.0, seed=seed, drain=True,
        )
        assert net.checker.audits > 0
        net.checker.verify_quiescent()
        assert net.stats.injected_total == net.stats.ejected_total

    def test_checker_counters_feed_cli_summary(self):
        # The CLI's --check summary reads these attributes.
        cfg = _tiny("sf-floor")
        net = _net(cfg, "min", "batched", check=True)
        net.run_synthetic(
            UniformRandom(net.topology.num_nodes), load=0.3,
            warmup_ns=300.0, measure_ns=600.0, seed=2, drain=True,
        )
        assert net.checker.injected == net.stats.injected_total
        assert net.checker.history.appended >= net.checker.injected


@pytest.mark.parametrize("backend", VEC_BACKENDS)
class TestEngineAPI:
    def _engine(self, backend):
        topo = MLFM(4)
        net = Network(topo, MinimalRouting(topo, seed=0),
                      SimConfig(backend=backend))
        return net.engine

    def test_schedule_and_ordering(self, backend):
        eng = self._engine(backend)
        seen = []
        eng.schedule(5.0, seen.append, "b")
        eng.schedule(1.0, seen.append, "a")
        eng.schedule_at(5.0, seen.append, "c")  # same time: seq breaks tie
        assert eng.pending == 3
        eng.run()
        assert seen == ["a", "b", "c"]
        assert eng.now == 5.0
        assert eng.pending == 0

    def test_schedule_at_past_raises(self, backend):
        eng = self._engine(backend)
        eng.schedule_at(10.0, lambda: None)
        eng.run()
        with pytest.raises(ValueError):
            eng.schedule_at(5.0, lambda: None)

    def test_until_advances_clock_without_executing_future(self, backend):
        eng = self._engine(backend)
        seen = []
        eng.schedule_at(100.0, seen.append, "late")
        executed = eng.run(until=50.0)
        assert executed == 0 and seen == []
        assert eng.now == 50.0  # horizon advance, event still queued
        assert eng.pending == 1
        eng.run()
        assert seen == ["late"] and eng.now == 100.0

    def test_max_events_budget(self, backend):
        eng = self._engine(backend)
        seen = []
        for i in range(5):
            eng.schedule_at(float(i + 1), seen.append, i)
        assert eng.run(max_events=2) == 2
        assert seen == [0, 1]
        assert eng.run() == 3
        assert seen == [0, 1, 2, 3, 4]

    def test_clear_resets(self, backend):
        eng = self._engine(backend)
        eng.schedule_at(1.0, lambda: None)
        eng.clear()
        assert eng.pending == 0 and eng.now == 0.0
        assert eng.run() == 0

    def test_sparse_far_future_event(self, backend):
        # Exercises the calendar queue's empty-bucket skip path (and the
        # kernel heap's long-gap pop).
        eng = self._engine(backend)
        seen = []
        eng.schedule_at(0.5, seen.append, "near")
        eng.schedule_at(1_000_000.0, seen.append, "far")
        eng.run()
        assert seen == ["near", "far"]
        assert eng.now == 1_000_000.0


class TestConfigValidation:
    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            SimConfig(backend="vectorised")

    @pytest.mark.parametrize("backend", ["batched", "kernel"])
    def test_backend_flows_through_orchestrate_config_dict(self, backend):
        from repro.orchestrate.job import sim_config_dict

        d = sim_config_dict(SimConfig(backend=backend))
        assert d["backend"] == backend
        assert SimConfig(**d).backend == backend
