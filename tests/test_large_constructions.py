"""Sanity tests at (near-)paper and radix-64 scales.

Construction-only (no simulation): verifies that the radix-64
configurations headlined in Sec. 2.3.1 actually build, have the claimed
sizes, and keep the diameter-2 property.  BFS-based diameter checks are
cheap even at these sizes.
"""

import pytest

from repro.topology import MLFM, OFT, SlimFly
from repro.topology.validate import validate_topology


class TestPaperScaleBuilds:
    def test_sf_q13(self):
        for mode, n in (("floor", 3042), ("ceil", 3380)):
            sf = SlimFly(13, mode)
            assert sf.num_nodes == n
            assert sf.endpoint_diameter() == 2

    def test_mlfm_h15(self):
        t = MLFM(15)
        assert t.num_nodes == 3600
        assert t.endpoint_diameter() == 2

    def test_oft_k12(self):
        t = OFT(12)
        assert t.num_nodes == 3192
        assert t.endpoint_diameter() == 2


class TestRadix64Builds:
    """The configurations behind Sec. 2.3.1's 33K-64K claims."""

    def test_oft_k32(self):
        # radix 64; k-1 = 31 prime.
        t = OFT(32)
        assert t.max_radix() == 64
        assert t.num_nodes == 63_552
        assert t.endpoint_diameter() == 2

    def test_mlfm_h32(self):
        t = MLFM(32)
        assert t.max_radix() == 64
        assert t.num_nodes == 33_792
        assert t.endpoint_diameter() == 2

    def test_sf_q17(self):
        # q=17 (delta=+1): r' = 25, p = floor(25/2) = 12; N = 6936.
        t = SlimFly(17)
        assert (t.network_radix, t.p) == (25, 12)
        assert t.num_nodes == 2 * 17 * 17 * 12
        assert t.endpoint_diameter() == 2

    @pytest.mark.parametrize("q", [16, 19, 23, 25])
    def test_sf_larger_prime_powers(self, q):
        t = SlimFly(q)
        assert t.num_routers == 2 * q * q
        assert t.endpoint_diameter() == 2

    def test_sf_q23_paper_diversity_numbers(self):
        # Sec. 2.3.3: for q = 23 the average diversity over
        # non-adjacent router pairs is ~1.1 with maximum 8.
        from repro.routing.paths import MinimalPaths

        t = SlimFly(23)
        mp = MinimalPaths(t)
        total = 0
        count = 0
        worst = 0
        # Sampled single-source sweep: exact for source router 0.
        for src in range(0, t.num_routers, 41):
            for dst in range(t.num_routers):
                if dst == src or t.is_edge(src, dst):
                    continue
                d = mp.diversity(src, dst)
                total += d
                count += 1
                worst = max(worst, d)
        mean = total / count
        assert 1.0 <= mean <= 1.25, mean
        assert worst <= 8


class TestCostAtScale:
    def test_costs_stay_at_3_and_2(self):
        for topo in (MLFM(32), OFT(32)):
            assert topo.ports_per_node() == pytest.approx(3.0)
            assert topo.links_per_node() == pytest.approx(2.0)

    def test_sf_cost_approaches_3_and_2(self):
        t = SlimFly(25, "ceil")
        assert t.ports_per_node() == pytest.approx(3.0, abs=0.12)
        assert t.links_per_node() == pytest.approx(2.0, abs=0.08)