"""Tests for oblivious minimal routing (Sec. 3.1)."""

import random

import pytest

from repro.routing import MinimalRouting, Route
from repro.routing.base import ROUTE_MINIMAL


class FakeCongestion:
    """Congestion context with scripted queue lengths."""

    def __init__(self, lengths):
        self.lengths = lengths

    def queue_len(self, router, neighbor):
        return self.lengths.get((router, neighbor), 0)

    def queue_capacity(self):
        return 100


class TestBasics:
    def test_route_kind_and_vcs(self, sf5):
        mr = MinimalRouting(sf5, seed=1)
        r = mr.route(0, 40)
        assert r.kind == ROUTE_MINIMAL
        assert r.intermediate is None
        assert len(r.vcs) == r.num_hops
        assert r.vcs == tuple(range(r.num_hops))  # hop-indexed (SF)

    def test_self_route(self, sf5):
        mr = MinimalRouting(sf5, seed=1)
        r = mr.route(4, 4)
        assert r.routers == (4,) and r.vcs == ()

    def test_adjacent_is_one_hop(self, sf5):
        mr = MinimalRouting(sf5, seed=1)
        n = sf5.neighbors(0)[0]
        assert mr.route(0, n).routers == (0, n)

    def test_route_at_most_two_hops(self, sf5):
        mr = MinimalRouting(sf5, seed=1)
        for d in range(1, sf5.num_routers, 7):
            assert mr.route(0, d).num_hops <= 2

    def test_mlfm_always_two_hops(self, mlfm4):
        mr = MinimalRouting(mlfm4, seed=1)
        eps = mlfm4.endpoint_routers()
        for d in eps[1:]:
            r = mr.route(eps[0], d)
            assert r.num_hops == 2
            assert not mlfm4.is_local(r.routers[1])  # via a GR

    def test_mlfm_single_vc(self, mlfm4):
        mr = MinimalRouting(mlfm4, seed=1)
        assert mr.num_vcs == 1
        r = mr.route(0, 7)
        assert set(r.vcs) == {0}

    def test_sf_two_vcs(self, sf5):
        assert MinimalRouting(sf5, seed=1).num_vcs == 2

    def test_num_vcs_oft(self, oft4):
        assert MinimalRouting(oft4, seed=1).num_vcs == 1

    def test_rejects_unknown_selection(self, sf5):
        with pytest.raises(ValueError):
            MinimalRouting(sf5, selection="magic")


class TestSelection:
    def test_random_selection_spreads(self, mlfm4):
        # Same-column pairs have h distinct middles; random selection
        # should eventually use several of them.
        mr = MinimalRouting(mlfm4, selection="random", seed=3)
        h = mlfm4.h
        middles = {mr.route(0, h + 1).routers[1] for _ in range(100)}
        assert len(middles) > 1

    def test_best_selection_prefers_empty_queue(self, mlfm4):
        mr = MinimalRouting(mlfm4, selection="best", seed=3)
        h = mlfm4.h
        candidates = mlfm4.common_neighbors(0, h + 1)
        # Penalise all first hops except one.
        lengths = {(0, m): 50 for m in candidates[1:]}
        ctx = FakeCongestion(lengths)
        for _ in range(10):
            assert mr.route(0, h + 1, ctx).routers[1] == candidates[0]

    def test_reproducible_with_seed(self, mlfm4):
        a = MinimalRouting(mlfm4, seed=42)
        b = MinimalRouting(mlfm4, seed=42)
        h = mlfm4.h
        for _ in range(20):
            assert a.route(0, h + 1).routers == b.route(0, h + 1).routers


class TestRouteDataclass:
    def test_vc_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Route(routers=(0, 1, 2), vcs=(0,))

    def test_channels(self):
        r = Route(routers=(0, 5, 9), vcs=(0, 1))
        assert r.channels() == ((0, 5), (5, 9))
        assert r.num_hops == 2
