"""Behavioural tests of the switch model: backpressure, VC isolation,
arbitration fairness, and ejection serialization.

These build tiny custom topologies where the expected contention
pattern is analytically known, then check the simulator honours it.
"""

import pytest

from repro.routing import MinimalRouting
from repro.routing.vc import HopIndexVC
from repro.sim import Network, SimConfig
from repro.sim.config import PAPER_CONFIG
from repro.topology import Dragonfly
from repro.topology.base import Topology
from repro.traffic import PermutationTraffic


def line3(p=2):
    """Three routers in a line, *p* nodes each (forces a shared link)."""
    return Topology("line3", [[1], [0, 2], [1]], [p, p, p])


class TestBackpressure:
    def test_shared_link_splits_bandwidth(self):
        # Nodes 0,1 (router 0) send to nodes 4,5 (router 2): all traffic
        # crosses links (0,1) and (1,2); 2 flows share each link -> each
        # flow gets ~0.5.
        topo = line3(p=2)
        pattern = PermutationTraffic([4, 5, -1, -1, 0, 1])
        net = Network(topo, MinimalRouting(topo, seed=1))
        stats = net.run_synthetic(
            pattern, load=1.0, warmup_ns=2000, measure_ns=6000, seed=3
        )
        # 4 active flows out of 6 nodes; each limited to ~0.5 =>
        # aggregate (over 6 nodes) = 4 * 0.5 / 6 = 0.333.
        assert stats.throughput == pytest.approx(4 * 0.5 / 6, rel=0.1)

    def test_no_contention_full_rate(self):
        topo = line3(p=1)
        pattern = PermutationTraffic([1, 0, -1])  # routers 0<->1 only
        net = Network(topo, MinimalRouting(topo, seed=1))
        stats = net.run_synthetic(
            pattern, load=1.0, warmup_ns=1000, measure_ns=4000, seed=3
        )
        # 2 of 3 nodes active at full rate.
        assert stats.throughput == pytest.approx(2 / 3, rel=0.08)

    def test_tiny_buffers_throttle_but_conserve(self):
        topo = line3(p=2)
        pattern = PermutationTraffic([4, 5, -1, -1, 0, 1])
        cfg = SimConfig(buffer_bytes_per_port=512)  # 2 packets per port
        net = Network(topo, MinimalRouting(topo, seed=1), cfg)
        net.run_synthetic(pattern, load=1.0, warmup_ns=1000, measure_ns=3000,
                          seed=3, drain=True)
        assert net.stats.injected_total == net.stats.ejected_total


class TestEjectionSerialization:
    def test_duplicate_destination_rejected_as_permutation(self):
        # Two sources, one destination is not a permutation; the
        # many-to-one case is exercised below with a custom pattern.
        with pytest.raises(ValueError):
            PermutationTraffic([2, 2, -1])

    def test_receiver_bottleneck_via_custom_pattern(self):
        topo = Topology("v", [[2], [2], [0, 1]], [1, 1, 1])

        class TwoToOne:
            def pick_destination(self, src, rng):
                return 2 if src in (0, 1) else None

        net = Network(topo, MinimalRouting(topo, seed=1))
        stats = net.run_synthetic(
            TwoToOne(), load=1.0, warmup_ns=1000, measure_ns=4000, seed=3
        )
        # Node 2 can eject at most 1.0; aggregate normalised over 3
        # nodes = 1/3.
        assert stats.throughput == pytest.approx(1 / 3, rel=0.1)


class TestArbitrationFairness:
    def test_equal_split_between_competing_inputs(self):
        # Router 1 receives from routers 0 and 2, both forwarding to
        # node on router 1?  Simpler: both send THROUGH router 1 to
        # opposite sides; each direction of the middle links is private,
        # so check the shared ejection at router 1 instead.
        topo = Topology("y", [[1], [0, 2, 3], [1], [1]], [1, 0, 1, 1])

        class BothToNode2:
            # nodes: 0 on router 0, 1 on router 2, 2 on router 3.
            def pick_destination(self, src, rng):
                return 2 if src in (0, 1) else None

        net = Network(topo, MinimalRouting(topo, seed=1))
        net.run_synthetic(
            BothToNode2(), load=1.0, warmup_ns=2000, measure_ns=8000, seed=3
        )
        counts = net.stats.eject_count_per_node
        # Node 2 received from both sources; fairness: neither source
        # starves.  Check via tracer-less proxy: total ejections at node
        # 2 ~ link rate * window; split roughly evenly (round robin).
        assert counts[2] > 0
        tracer_net = Network(topo, MinimalRouting(topo, seed=1))
        tracer = tracer_net.enable_trace(capacity=100_000, start_ns=2000)
        tracer_net.run_synthetic(
            BothToNode2(), load=1.0, warmup_ns=2000, measure_ns=8000, seed=3
        )
        by_src = {}
        for r in tracer.records:
            by_src[r.src_node] = by_src.get(r.src_node, 0) + 1
        assert set(by_src) == {0, 1}
        lo, hi = sorted(by_src.values())
        assert hi / lo < 1.3  # round-robin keeps the split near 50/50


class TestVCIsolation:
    def test_vcs_share_port_buffer(self):
        # With 2 VCs the per-VC buffer is half the port buffer.
        cfg = PAPER_CONFIG
        assert cfg.buffer_packets_per_vc(2) * 2 <= cfg.buffer_packets_per_port

    def test_multi_vc_network_conserves(self, sf5):
        from repro.routing import IndirectRandomRouting
        from repro.traffic import UniformRandom

        net = Network(sf5, IndirectRandomRouting(sf5, seed=1))
        assert net.num_vcs == 4
        net.run_synthetic(
            UniformRandom(sf5.num_nodes), load=0.6,
            warmup_ns=500, measure_ns=2000, seed=3, drain=True,
        )
        assert net.stats.injected_total == net.stats.ejected_total


class TestDragonflySimulation:
    """Related-work extension: the generic stack simulates the Dragonfly
    too, with a 3-VC hop-indexed policy for its diameter-3 minimal
    routes."""

    def test_dragonfly_uniform(self):
        df = Dragonfly(2)
        policy = HopIndexVC(minimal_vcs=3, indirect_vcs=6)
        net = Network(df, MinimalRouting(df, vc_policy=policy, seed=1))
        from repro.traffic import UniformRandom

        stats = net.run_synthetic(
            UniformRandom(df.num_nodes), load=0.4,
            warmup_ns=1000, measure_ns=4000, seed=3, drain=True,
        )
        assert stats.throughput == pytest.approx(0.4, rel=0.1)
        assert net.stats.injected_total == net.stats.ejected_total
