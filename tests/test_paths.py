"""Tests for minimal-path enumeration (repro.routing.paths)."""

import pytest

from repro.routing.paths import MinimalPaths, all_shortest_paths_bfs
from repro.topology import MLFM, OFT, SlimFly
from repro.topology.base import Topology


class TestBFS:
    def test_self(self, sf5):
        assert all_shortest_paths_bfs(sf5, 3, 3) == [(3,)]

    def test_adjacent(self, sf5):
        n = sf5.neighbors(0)[0]
        assert all_shortest_paths_bfs(sf5, 0, n) == [(0, n)]

    def test_matches_common_neighbors(self, sf5):
        for d in range(sf5.num_routers):
            if d == 0 or sf5.is_edge(0, d):
                continue
            paths = all_shortest_paths_bfs(sf5, 0, d)
            middles = sorted(p[1] for p in paths)
            assert middles == sf5.common_neighbors(0, d)
            assert all(len(p) == 3 for p in paths)

    def test_disconnected_raises(self):
        t = Topology("disc", [[1], [0], [3], [2]], [1, 1, 1, 1])
        with pytest.raises(ValueError):
            all_shortest_paths_bfs(t, 0, 2)

    def test_long_path(self):
        t = Topology("path", [[1], [0, 2], [1, 3], [2]], [1, 0, 0, 1])
        assert all_shortest_paths_bfs(t, 0, 3) == [(0, 1, 2, 3)]


class TestMinimalPaths:
    def test_caches(self, sf5):
        mp = MinimalPaths(sf5)
        first = mp.paths(0, 7)
        assert mp.paths(0, 7) is first

    def test_all_paths_valid_edges(self, mlfm4):
        mp = MinimalPaths(mlfm4)
        eps = mlfm4.endpoint_routers()
        for s in eps[:5]:
            for d in eps:
                for path in mp.paths(s, d):
                    for u, v in zip(path[:-1], path[1:]):
                        assert mlfm4.is_edge(u, v)

    def test_distance(self, sf5):
        mp = MinimalPaths(sf5)
        assert mp.distance(0, 0) == 0
        n = sf5.neighbors(0)[0]
        assert mp.distance(0, n) == 1

    def test_diversity_mlfm_same_column(self, mlfm4):
        mp = MinimalPaths(mlfm4)
        h = mlfm4.h
        same_col = (0, h + 1)  # layer 0/1, column 0
        assert mp.diversity(*same_col) == h

    def test_diversity_oft_symmetric(self, oft4):
        mp = MinimalPaths(oft4)
        assert mp.diversity(0, oft4.symmetric_counterpart(0)) == oft4.k

    def test_paths_unique_for_most_oft_pairs(self, oft4):
        mp = MinimalPaths(oft4)
        assert mp.diversity(0, 1) == 1

    def test_bfs_fallback_for_long_pairs(self, ft3):
        # Cross-pod pairs in a 3-level fat tree are 4 hops apart.
        mp = MinimalPaths(ft3)
        other_pod = ft3.num_edge - 1
        paths = mp.paths(0, other_pod)
        assert all(len(p) == 5 for p in paths)
        assert len(paths) == (ft3.r // 2) ** 2  # full up-route diversity

    def test_sf_distance_at_most_two(self, sf5):
        mp = MinimalPaths(sf5)
        for d in range(sf5.num_routers):
            assert mp.distance(0, d) <= 2
