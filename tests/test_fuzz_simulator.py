"""Simulator fuzzing over random topologies.

The paper's topologies are highly structured; these tests feed the
simulator random regular and irregular graphs (with VC budgets sized to
the measured diameter) and check the universal invariants:
conservation, latency floors, throughput ceilings, and the
static-analysis/simulation agreement.
"""

import random

import networkx as nx
import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.analysis.faults import degrade, safe_vc_policy
from repro.analysis.linkload import channel_loads_minimal, saturation_throughput, uniform_flows
from repro.routing import IndirectRandomRouting, MinimalRouting, UGALRouting
from repro.routing.vc import HopIndexVC
from repro.sim import Network, PAPER_CONFIG, SimConfig
from repro.topology import SlimFly
from repro.topology.base import Topology
from repro.traffic import UniformRandom

CHECKED = SimConfig(check=True)


def random_regular_topology(degree: int, num_routers: int, p: int, seed: int) -> Topology:
    """Connected random regular graph with *p* nodes per router."""
    rng_seed = seed
    for _ in range(20):
        g = nx.random_regular_graph(degree, num_routers, seed=rng_seed)
        if nx.is_connected(g):
            adjacency = [sorted(g.neighbors(r)) for r in range(num_routers)]
            return Topology(
                f"rr(d={degree},R={num_routers})", adjacency, [p] * num_routers
            )
        rng_seed += 1
    pytest.skip("no connected random regular graph found")


def random_irregular_topology(num_routers: int, extra_edges: int, p: int, seed: int) -> Topology:
    """Random spanning tree plus chords; node counts vary per router."""
    rng = random.Random(seed)
    adjacency = [set() for _ in range(num_routers)]
    nodes = list(range(num_routers))
    rng.shuffle(nodes)
    for i in range(1, num_routers):
        a = nodes[i]
        b = nodes[rng.randrange(i)]
        adjacency[a].add(b)
        adjacency[b].add(a)
    for _ in range(extra_edges):
        a, b = rng.randrange(num_routers), rng.randrange(num_routers)
        if a != b:
            adjacency[a].add(b)
            adjacency[b].add(a)
    counts = [rng.randrange(p + 1) for _ in range(num_routers)]
    if sum(counts) < 2:
        counts[0] = counts[1] = 1
    return Topology(
        f"irr(R={num_routers})", [sorted(s) for s in adjacency], counts
    )


def vc_policy_for(topo: Topology) -> HopIndexVC:
    d = topo.endpoint_diameter()
    return HopIndexVC(minimal_vcs=max(2, d), indirect_vcs=max(4, 2 * d))


@given(
    st.sampled_from([3, 4, 5]),
    st.sampled_from([10, 14, 20]),
    st.integers(1, 3),
    st.integers(0, 10_000),
)
@settings(max_examples=12, deadline=None)
def test_fuzz_regular_conservation(degree, num_routers, p, seed):
    if degree * num_routers % 2:  # regular graph needs even degree sum
        num_routers += 1
    topo = random_regular_topology(degree, num_routers, p, seed)
    net = Network(topo, MinimalRouting(topo, vc_policy=vc_policy_for(topo), seed=seed))
    stats = net.run_synthetic(
        UniformRandom(topo.num_nodes), load=0.4,
        warmup_ns=500, measure_ns=1500, seed=seed, drain=True,
    )
    assert net.stats.injected_total == net.stats.ejected_total
    assert stats.throughput <= 1.0
    if stats.mean_latency_ns is not None:
        assert stats.mean_latency_ns >= PAPER_CONFIG.zero_load_latency_ns(0) * 0.99


@given(st.sampled_from([8, 12, 16]), st.integers(0, 10_000))
@settings(max_examples=10, deadline=None)
def test_fuzz_irregular_conservation(num_routers, seed):
    topo = random_irregular_topology(num_routers, extra_edges=num_routers, p=2, seed=seed)
    net = Network(topo, MinimalRouting(topo, vc_policy=vc_policy_for(topo), seed=seed))
    net.run_synthetic(
        UniformRandom(topo.num_nodes), load=0.3,
        warmup_ns=500, measure_ns=1500, seed=seed, drain=True,
    )
    assert net.stats.injected_total == net.stats.ejected_total


@given(st.integers(0, 10_000))
@settings(max_examples=6, deadline=None)
def test_fuzz_utilization_physical_bounds(seed):
    """No simulated link ever exceeds its capacity, and when the static
    analysis predicts a bottleneck, that bottleneck link indeed runs
    hot under full offered load.

    (Note the aggregate throughput may legitimately exceed the uniform
    saturation bound 1/max-load on irregular graphs: only flows
    crossing the bottleneck throttle.)
    """
    topo = random_regular_topology(4, 14, 2, seed)
    loads = channel_loads_minimal(topo, uniform_flows(topo))
    bound = saturation_throughput(loads)
    net = Network(topo, MinimalRouting(topo, vc_policy=vc_policy_for(topo), seed=seed))
    net.run_synthetic(
        UniformRandom(topo.num_nodes), load=1.0,
        warmup_ns=1000, measure_ns=3000, seed=seed,
    )
    util = net.channel_utilization()
    # Allow one packet of window-edge quantization (a transmission
    # starting just inside the window counts fully).
    slack = PAPER_CONFIG.packet_time_ns / 3000
    assert all(v <= 1.0 + slack + 1e-9 for v in util.values())
    if bound < 0.85:  # a real structural bottleneck exists
        router_links = {k: v for k, v in util.items() if k[0] != "eject"}
        assert max(router_links.values()) > 0.75


def make_routing(kind: str, topo: Topology, seed: int):
    """MIN / INR / UGAL with a VC budget sized to the topology."""
    policy = vc_policy_for(topo)
    if kind == "min":
        return MinimalRouting(topo, vc_policy=policy, seed=seed)
    if kind == "inr":
        return IndirectRandomRouting(topo, vc_policy=policy, seed=seed)
    return UGALRouting(topo, vc_policy=policy, seed=seed)


@given(
    st.sampled_from(["min", "inr", "ugal"]),
    st.sampled_from([10, 14]),
    st.integers(0, 10_000),
)
@settings(max_examples=9, deadline=None)
def test_fuzz_checked_all_routings(kind, num_routers, seed):
    """Random regular topologies under the invariant checker, across
    every routing family (MIN / INR / UGAL): the checker verifies
    conservation, credit loops, VC legality, latency floors and
    progress on every single transition -- a far denser net than the
    end-state assertions above."""
    topo = random_regular_topology(4, num_routers, 2, seed)
    net = Network(topo, make_routing(kind, topo, seed), CHECKED)
    net.run_synthetic(
        UniformRandom(topo.num_nodes), load=0.4,
        warmup_ns=300, measure_ns=900, seed=seed, drain=True,
    )
    assert net.stats.injected_total == net.stats.ejected_total
    assert not net.checker.location


@given(
    st.sampled_from(["min", "inr", "ugal"]),
    st.sampled_from([0.05, 0.10, 0.20]),
    st.integers(0, 10_000),
)
@settings(max_examples=9, deadline=None)
def test_fuzz_checked_degraded_topologies(kind, fraction, seed):
    """Degraded (link-failed) Slim Fly instances under the checker:
    minimal paths lengthen past diameter two, so the VC budget comes
    from analysis.faults.safe_vc_policy; every routing family must
    still satisfy all invariants on the damaged network."""
    degraded = degrade(SlimFly(5), fraction=fraction, seed=seed)
    try:
        policy = safe_vc_policy(degraded, uses_indirect=(kind != "min"))
    except ValueError:
        assume(False)  # failures disconnected the endpoint routers
    if kind == "min":
        routing = MinimalRouting(degraded, vc_policy=policy, seed=seed)
    elif kind == "inr":
        routing = IndirectRandomRouting(degraded, vc_policy=policy, seed=seed)
    else:
        routing = UGALRouting(degraded, vc_policy=policy, seed=seed)
    net = Network(degraded, routing, CHECKED)
    net.run_synthetic(
        UniformRandom(degraded.num_nodes), load=0.3,
        warmup_ns=300, measure_ns=900, seed=seed, drain=True,
    )
    assert net.stats.injected_total == net.stats.ejected_total
    assert not net.checker.location
