"""Unit tests for repro.maths.moore (the Moore bound)."""

import pytest

from repro.maths.moore import moore_bound, moore_fraction
from repro.topology import SlimFly


class TestMooreBound:
    def test_diameter2_formula(self):
        # M(d, 2) = 1 + d^2.
        for d in range(2, 20):
            assert moore_bound(d, 2) == 1 + d * d

    def test_diameter1(self):
        assert moore_bound(5, 1) == 6  # complete graph K6

    def test_diameter0(self):
        assert moore_bound(7, 0) == 1

    def test_degree_zero(self):
        assert moore_bound(0, 3) == 1

    def test_degree_one(self):
        assert moore_bound(1, 5) == 2

    def test_petersen_graph(self):
        # The Petersen graph achieves the Moore bound for (3, 2).
        assert moore_bound(3, 2) == 10

    def test_hoffman_singleton(self):
        # Hoffman-Singleton achieves the bound for (7, 2).
        assert moore_bound(7, 2) == 50

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            moore_bound(-1, 2)
        with pytest.raises(ValueError):
            moore_bound(3, -2)


class TestMooreFraction:
    def test_slim_fly_near_88_percent(self):
        # Paper Sec. 2.1.2: the SF reaches ~88% of the Moore bound.  The
        # exact fraction oscillates with delta around the asymptote
        # 8/9 ~ 0.889 (q = 5 is Hoffman-Singleton at exactly 100%).
        fracs = []
        for q in (7, 9, 11, 13):
            sf = SlimFly(q)
            frac = moore_fraction(sf.num_routers, sf.network_radix, 2)
            fracs.append(frac)
            assert 0.79 <= frac <= 0.96, f"q={q}: {frac:.3f}"
        assert abs(sum(fracs) / len(fracs) - 8 / 9) < 0.05

    def test_asymptotic_fraction_is_8_9(self):
        # 2q^2 / (1 + ((3q - delta)/2)^2) -> 8/9.
        sf = SlimFly(41)  # q = 41: delta = +1, large enough to be close
        frac = moore_fraction(sf.num_routers, sf.network_radix, 2)
        assert abs(frac - 8 / 9) < 0.03

    def test_slim_fly_q5_is_hoffman_singleton(self):
        sf = SlimFly(5)
        assert moore_fraction(sf.num_routers, sf.network_radix, 2) == 1.0

    def test_complete_graph_hits_bound(self):
        assert moore_fraction(6, 5, 1) == 1.0
