"""Shared fixtures: small topology instances reused across test modules.

Module-scoped so expensive constructions (field setup, adjacency
building) run once per session; topologies are immutable after
construction, so sharing is safe.
"""

from __future__ import annotations

import pytest

from repro.topology import MLFM, OFT, Dragonfly, FatTree2L, FatTree3L, HyperX2D, SlimFly


@pytest.fixture(scope="session")
def sf5():
    return SlimFly(5)


@pytest.fixture(scope="session")
def sf5_ceil():
    return SlimFly(5, "ceil")


@pytest.fixture(scope="session")
def sf7():
    return SlimFly(7)


@pytest.fixture(scope="session")
def sf8():
    return SlimFly(8)


@pytest.fixture(scope="session")
def sf9():
    return SlimFly(9)


@pytest.fixture(scope="session")
def mlfm4():
    return MLFM(4)


@pytest.fixture(scope="session")
def mlfm5():
    return MLFM(5)


@pytest.fixture(scope="session")
def oft3():
    return OFT(3)


@pytest.fixture(scope="session")
def oft4():
    return OFT(4)


@pytest.fixture(scope="session")
def hyperx():
    return HyperX2D.balanced(9)


@pytest.fixture(scope="session")
def ft2():
    return FatTree2L(8)


@pytest.fixture(scope="session")
def ft3():
    return FatTree3L(4)


@pytest.fixture(scope="session")
def dragonfly():
    return Dragonfly(2)


@pytest.fixture(scope="session")
def all_diameter2(sf5, mlfm4, oft4, hyperx, ft2):
    """The diameter-two topologies used in cross-cutting invariant tests."""
    return [sf5, mlfm4, oft4, hyperx, ft2]


@pytest.fixture(scope="session")
def paper_trio(sf5, mlfm4, oft4):
    """The three topologies the paper evaluates, at test scale."""
    return [sf5, mlfm4, oft4]
