"""End-to-end reproduction of the paper's headline claims at test scale.

These are the integration tests that tie topology + routing + simulator
+ traffic together and check the *shape* of the paper's results
(Sec. 4.3/4.4): who wins, by roughly what factor, and where the
saturation points fall.  They use the smallest configurations that
exhibit each phenomenon so the whole module stays tractable.
"""

import pytest

from repro.routing import IndirectRandomRouting, MinimalRouting, UGALRouting
from repro.sim import Network
from repro.topology import MLFM, OFT, SlimFly
from repro.traffic import UniformRandom, worst_case_traffic

WARMUP = 1_500.0
MEASURE = 5_000.0


def run(topology, routing, pattern, load, seed=7):
    net = Network(topology, routing)
    return net.run_synthetic(
        pattern, load=load, warmup_ns=WARMUP, measure_ns=MEASURE, seed=seed
    )


@pytest.fixture(scope="module")
def sf():
    return SlimFly(5, "floor")


@pytest.fixture(scope="module")
def mlfm():
    return MLFM(5)


@pytest.fixture(scope="module")
def oft():
    return OFT(4)


class TestUniformMinimal:
    """Sec. 4.3.1: MIN supports ~96-98% of load under uniform traffic."""

    def test_sf_high_uniform_throughput(self, sf):
        stats = run(sf, MinimalRouting(sf, seed=1), UniformRandom(sf.num_nodes), 0.9)
        assert stats.throughput >= 0.85

    def test_mlfm_high_uniform_throughput(self, mlfm):
        stats = run(mlfm, MinimalRouting(mlfm, seed=1), UniformRandom(mlfm.num_nodes), 0.9)
        assert stats.throughput >= 0.85

    def test_oft_high_uniform_throughput(self, oft):
        stats = run(oft, MinimalRouting(oft, seed=1), UniformRandom(oft.num_nodes), 0.9)
        assert stats.throughput >= 0.85

    def test_sf_ceil_saturates_earlier_than_floor(self):
        # Sec. 4.3.1: "the one with higher p saturates faster, at ~87%".
        floor = SlimFly(5, "floor")
        ceil = SlimFly(5, "ceil")
        thr_floor = run(
            floor, MinimalRouting(floor, seed=1), UniformRandom(floor.num_nodes), 0.97
        ).throughput
        thr_ceil = run(
            ceil, MinimalRouting(ceil, seed=1), UniformRandom(ceil.num_nodes), 0.97
        ).throughput
        assert thr_ceil < thr_floor


class TestWorstCaseMinimal:
    """Sec. 4.2/4.3.1: MIN saturates at 1/(2p), 1/h, 1/k under WC."""

    def test_sf_saturation(self, sf):
        expected = 1.0 / (2 * sf.p)  # ~0.167
        stats = run(sf, MinimalRouting(sf, seed=1), worst_case_traffic(sf, seed=2), 0.5)
        assert stats.throughput == pytest.approx(expected, rel=0.25)

    def test_mlfm_saturation(self, mlfm):
        stats = run(mlfm, MinimalRouting(mlfm, seed=1), worst_case_traffic(mlfm), 0.5)
        assert stats.throughput == pytest.approx(1.0 / mlfm.h, rel=0.1)

    def test_oft_saturation(self, oft):
        stats = run(oft, MinimalRouting(oft, seed=1), worst_case_traffic(oft), 0.5)
        assert stats.throughput == pytest.approx(1.0 / oft.k, rel=0.1)

    def test_below_saturation_accepted(self, mlfm):
        load = 0.8 / mlfm.h
        stats = run(mlfm, MinimalRouting(mlfm, seed=1), worst_case_traffic(mlfm), load)
        assert stats.throughput == pytest.approx(load, rel=0.1)


class TestIndirectRandom:
    """Sec. 4.3.1: INR halves uniform throughput but rescues the WC."""

    def test_uniform_halved(self, mlfm):
        stats = run(
            mlfm, IndirectRandomRouting(mlfm, seed=1), UniformRandom(mlfm.num_nodes), 0.9
        )
        assert stats.throughput == pytest.approx(0.5, abs=0.08)

    def test_wc_equals_uniform_saturation(self, mlfm):
        # INR makes WC look like uniform: both saturate around 0.5.
        wc = run(mlfm, IndirectRandomRouting(mlfm, seed=1), worst_case_traffic(mlfm), 0.45)
        assert wc.throughput == pytest.approx(0.45, rel=0.1)

    def test_wc_beats_minimal(self, oft):
        min_thr = run(
            oft, MinimalRouting(oft, seed=1), worst_case_traffic(oft), 0.45
        ).throughput
        inr_thr = run(
            oft, IndirectRandomRouting(oft, seed=1), worst_case_traffic(oft), 0.45
        ).throughput
        assert inr_thr > 1.5 * min_thr

    def test_latency_overhead_at_low_load(self, sf):
        min_lat = run(
            sf, MinimalRouting(sf, seed=1), UniformRandom(sf.num_nodes), 0.1
        ).mean_latency_ns
        inr_lat = run(
            sf, IndirectRandomRouting(sf, seed=1), UniformRandom(sf.num_nodes), 0.1
        ).mean_latency_ns
        # Indirect paths are about twice as long.
        assert inr_lat > 1.3 * min_lat


class TestAdaptive:
    """Sec. 4.3.2: UGAL matches MIN on uniform and beats INR's latency
    while rescuing worst-case throughput."""

    def test_sf_a_uniform_matches_minimal(self, sf):
        ug = UGALRouting(sf, cost_mode="sf", c_sf=1.0, num_indirect=4, seed=1)
        stats = run(sf, ug, UniformRandom(sf.num_nodes), 0.8)
        assert stats.throughput >= 0.75

    def test_sf_a_wc_beats_minimal(self, sf):
        ug = UGALRouting(sf, cost_mode="sf", c_sf=1.0, num_indirect=4, seed=1)
        wc = worst_case_traffic(sf, seed=2)
        adaptive = run(sf, ug, wc, 0.4).throughput
        minimal = run(sf, MinimalRouting(sf, seed=1), wc, 0.4).throughput
        assert adaptive > 1.5 * minimal

    def test_mlfm_a_wc(self, mlfm):
        ug = UGALRouting(mlfm, c=2.0, num_indirect=5, seed=1)
        stats = run(mlfm, ug, worst_case_traffic(mlfm), 0.4)
        assert stats.throughput >= 0.3

    def test_oft_a_wc(self, oft):
        ug = UGALRouting(oft, c=2.0, num_indirect=1, seed=1)
        stats = run(oft, ug, worst_case_traffic(oft), 0.4)
        assert stats.throughput >= 0.3

    def test_threshold_keeps_uniform_latency_low(self, sf):
        # Sec. 4.3.2 / Fig. 8: with T=10% the latency creep of generic
        # UGAL under high uniform load disappears: packets stay minimal.
        generic = UGALRouting(sf, cost_mode="sf", c_sf=0.1, num_indirect=4, seed=1)
        thresh = UGALRouting(
            sf, cost_mode="sf", c_sf=0.1, num_indirect=4, threshold=0.10, seed=1
        )
        lat_generic = run(sf, generic, UniformRandom(sf.num_nodes), 0.7).mean_latency_ns
        lat_thresh = run(sf, thresh, UniformRandom(sf.num_nodes), 0.7).mean_latency_ns
        assert lat_thresh < lat_generic

    def test_generic_ugal_drawback_fixed_by_threshold(self, mlfm):
        # Sec. 3.3: generic UGAL routes some packets indirectly even at
        # low load ("when q_I = 0, the value of c doesn't matter") --
        # that is the documented drawback; the threshold variant
        # suppresses it almost completely.
        def indirect_frac(routing):
            net = Network(mlfm, routing)
            stats = net.run_synthetic(
                UniformRandom(mlfm.num_nodes), load=0.1,
                warmup_ns=WARMUP, measure_ns=MEASURE, seed=7,
            )
            kinds = stats.kind_counts
            return kinds.get("indirect", 0) / max(sum(kinds.values()), 1)

        generic = indirect_frac(UGALRouting(mlfm, c=2.0, num_indirect=5, seed=1))
        thresholded = indirect_frac(
            UGALRouting(mlfm, c=2.0, num_indirect=5, threshold=0.10, seed=1)
        )
        assert generic > 0.1  # the drawback is visible
        assert thresholded < 0.02  # and the threshold removes it


class TestExchanges:
    """Sec. 4.4: exchange-pattern orderings (Figs. 13/14)."""

    def test_a2a_inr_about_half_of_min(self, oft):
        from repro.traffic import AllToAll

        a2a = AllToAll(oft.num_nodes, message_bytes=512, seed=3)
        eff = {}
        for name, routing in (
            ("min", MinimalRouting(oft, seed=1)),
            ("inr", IndirectRandomRouting(oft, seed=1)),
        ):
            net = Network(oft, routing)
            eff[name] = net.run_exchange(a2a)["effective_throughput"]
        assert eff["min"] > 0.6
        assert eff["inr"] == pytest.approx(eff["min"] / 2, rel=0.35)

    def test_nn_inr_beats_min_is_scale_dependent_but_completes(self, mlfm):
        from repro.traffic import NearestNeighbor3D, paper_torus_dims

        nn = NearestNeighbor3D(
            mlfm.num_nodes, message_bytes=2048, dims=paper_torus_dims(mlfm)
        )
        for routing in (MinimalRouting(mlfm, seed=1), IndirectRandomRouting(mlfm, seed=1)):
            net = Network(mlfm, routing)
            res = net.run_exchange(nn)
            assert 0.2 <= res["effective_throughput"] <= 1.0
