"""Determinism regression: orchestrated execution is bit-identical to serial.

The contract from ISSUE/DESIGN: the orchestrator changes *where* a
point executes, never *what* it computes — every ``SweepPoint`` field
must match the serial :func:`load_sweep` exactly for fixed seeds,
whether the point ran in-process, in a pool worker, or came back from
the result cache.
"""

import dataclasses

import pytest

from repro.cli import parse_topology
from repro.experiments import load_sweep
from repro.orchestrate import (
    Orchestrator,
    orchestrated_load_sweep,
    run_campaign,
    sweep_jobs,
)
from repro.routing import MinimalRouting, UGALRouting
from repro.traffic import UniformRandom, worst_case_traffic

TOPOLOGY = "sf:q=5,p=floor"
LOADS = [0.2, 0.5]
WINDOWS = dict(warmup_ns=200.0, measure_ns=600.0)


def serial_points(routing_factory, pattern_factory, seed):
    topo = parse_topology(TOPOLOGY)
    return load_sweep(topo, routing_factory, pattern_factory, LOADS, seed=seed, **WINDOWS)


class TestSerialVsOrchestrated:
    def assert_identical(self, serial, orchestrated):
        assert len(serial) == len(orchestrated)
        for a, b in zip(serial, orchestrated):
            # Field-for-field equality, not approx: same code path, same seeds.
            assert dataclasses.asdict(a) == dataclasses.asdict(b)

    def test_minimal_uniform_in_process(self):
        serial = serial_points(
            lambda t, s: MinimalRouting(t, seed=s),
            lambda t: UniformRandom(t.num_nodes), seed=3,
        )
        orch = orchestrated_load_sweep(
            TOPOLOGY, ("min", {}), ("uniform", {}), LOADS, seed=3, **WINDOWS
        )
        self.assert_identical(serial, orch)

    def test_minimal_uniform_process_pool(self):
        serial = serial_points(
            lambda t, s: MinimalRouting(t, seed=s),
            lambda t: UniformRandom(t.num_nodes), seed=3,
        )
        orch = orchestrated_load_sweep(
            TOPOLOGY, ("min", {}), ("uniform", {}), LOADS,
            orchestrator=Orchestrator(jobs=2), seed=3, **WINDOWS,
        )
        self.assert_identical(serial, orch)

    def test_adaptive_worstcase_process_pool(self):
        # UGAL is the hardest case: per-point RNG state for candidate
        # selection plus congestion-sensitive decisions.
        kwargs = {"cost_mode": "sf", "c_sf": 1.0, "num_indirect": 4}
        serial = serial_points(
            lambda t, s: UGALRouting(t, seed=s, **kwargs),
            lambda t: worst_case_traffic(t, seed=11), seed=11,
        )
        orch = orchestrated_load_sweep(
            TOPOLOGY, ("ugal", dict(kwargs)), ("worstcase", {"seed": 11}), LOADS,
            orchestrator=Orchestrator(jobs=2), seed=11, **WINDOWS,
        )
        self.assert_identical(serial, orch)

    def test_cached_results_are_identical_too(self, tmp_path):
        serial = serial_points(
            lambda t, s: MinimalRouting(t, seed=s),
            lambda t: UniformRandom(t.num_nodes), seed=5,
        )
        for run in range(2):
            orch = Orchestrator(jobs=2, cache_dir=tmp_path, resume=True)
            points = orchestrated_load_sweep(
                TOPOLOGY, ("min", {}), ("uniform", {}), LOADS,
                orchestrator=orch, seed=5, **WINDOWS,
            )
            self.assert_identical(serial, points)
        # Second pass executed nothing: pure cache.
        assert orch.last_stats["executed"] == 0
        assert orch.last_stats["cache_hits"] == len(LOADS)


class TestResumeSemantics:
    def jobs(self):
        return sweep_jobs(TOPOLOGY, ("min", {}), ("uniform", {}), LOADS, seed=5, **WINDOWS)

    def test_force_invalidates_and_reruns(self, tmp_path):
        first = Orchestrator(jobs=1, cache_dir=tmp_path, resume=True)
        first.run(self.jobs())
        assert first.last_stats["executed"] == len(LOADS)

        forced = Orchestrator(jobs=1, cache_dir=tmp_path, resume=True, force=True)
        forced.run(self.jobs())
        assert forced.last_stats["executed"] == len(LOADS)
        assert forced.last_stats["cache_hits"] == 0

    def test_partial_resume_executes_only_missing_points(self, tmp_path):
        Orchestrator(jobs=1, cache_dir=tmp_path, resume=True).run(self.jobs())
        wider = sweep_jobs(
            TOPOLOGY, ("min", {}), ("uniform", {}), LOADS + [0.8], seed=5, **WINDOWS
        )
        orch = Orchestrator(jobs=1, cache_dir=tmp_path, resume=True)
        result = orch.run(wider)
        assert orch.last_stats["cache_hits"] == len(LOADS)
        assert orch.last_stats["executed"] == 1
        assert [result.outcomes[j].ok for j in result.order] == [True] * 3

    def test_campaign_without_store_always_executes(self):
        result = run_campaign(self.jobs())
        assert result.stats["executed"] == len(LOADS)
        assert not result.failed


class TestWorkloadDeterminism:
    """Closed-loop collective runs obey the same bit-identity contract."""

    WORKLOADS = [
        ("ring-allreduce", {"message_bytes": 2048, "ranks": 12}),
        ("rd-allreduce", {"message_bytes": 1024, "ranks": 16}),
        ("phased-a2a", {"message_bytes": 512, "ranks": 10}),
    ]

    @staticmethod
    def _strip(payload):
        """Drop wall-clock telemetry; everything else must match exactly."""
        out = dict(payload)
        out.pop("driver_wall_s", None)
        return out

    def serial_payloads(self, seed):
        from repro.experiments import run_workload
        from repro.workload import build_workload

        payloads = []
        for name, kwargs in self.WORKLOADS:
            topo = parse_topology(TOPOLOGY)
            w = build_workload(
                name, topo.num_nodes, kwargs["message_bytes"], ranks=kwargs["ranks"]
            )
            payloads.append(
                run_workload(
                    topo, lambda t, s: MinimalRouting(t, seed=s), w, seed=seed
                )
            )
        return payloads

    def orchestrated_payloads(self, seed, orchestrator):
        from repro.orchestrate import workload_job

        jobs = [
            workload_job(TOPOLOGY, ("min", {}), (name, dict(kwargs)), seed=seed)
            for name, kwargs in self.WORKLOADS
        ]
        result = orchestrator.run(jobs).raise_on_failure()
        return [result.outcomes[j].result.payload for j in result.order]

    @pytest.mark.parametrize("jobs", [1, 2])
    def test_pool_matches_serial_bit_identically(self, jobs):
        serial = self.serial_payloads(seed=7)
        orch = self.orchestrated_payloads(seed=7, orchestrator=Orchestrator(jobs=jobs))
        assert len(serial) == len(orch)
        for a, b in zip(serial, orch):
            assert self._strip(a) == self._strip(b)

    def test_repeat_seeds_fuzz(self):
        # Same seed twice -> identical; the runs really are seed-driven.
        for seed in (0, 3, 11):
            a = self.serial_payloads(seed=seed)
            b = self.serial_payloads(seed=seed)
            assert [self._strip(x) for x in a] == [self._strip(y) for y in b]

    def test_workload_results_cache_cleanly(self, tmp_path):
        serial = self.serial_payloads(seed=9)
        for run in range(2):
            orch = Orchestrator(jobs=2, cache_dir=tmp_path, resume=True)
            payloads = self.orchestrated_payloads(seed=9, orchestrator=orch)
            for a, b in zip(serial, payloads):
                assert self._strip(a) == self._strip(b)
        assert orch.last_stats["executed"] == 0
        assert orch.last_stats["cache_hits"] == len(self.WORKLOADS)
