"""Tests for the adversarial worst-case traffic constructions (Sec. 4.2)."""

import numpy as np
import pytest

from repro.analysis.linkload import (
    channel_loads_minimal,
    permutation_flows,
    saturation_throughput,
)
from repro.topology import MLFM, OFT, SlimFly
from repro.traffic import ShiftTraffic, worst_case_traffic
from repro.traffic.worstcase import SlimFlyWorstCase, slimfly_worst_case_chains


class TestDispatch:
    def test_mlfm_gets_shift_by_p(self, mlfm4):
        wc = worst_case_traffic(mlfm4)
        assert isinstance(wc, ShiftTraffic)
        assert wc.shift == mlfm4.p

    def test_oft_gets_shift_by_p(self, oft4):
        wc = worst_case_traffic(oft4)
        assert isinstance(wc, ShiftTraffic)
        assert wc.shift == oft4.p

    def test_sf_gets_chain_pattern(self, sf5):
        wc = worst_case_traffic(sf5, seed=1)
        assert isinstance(wc, SlimFlyWorstCase)

    def test_generic_fallback(self, ft2):
        wc = worst_case_traffic(ft2)
        assert isinstance(wc, ShiftTraffic)


class TestSlimFlyChains:
    def test_chains_cover_all_routers_once(self, sf5):
        chains = slimfly_worst_case_chains(sf5, seed=0)
        flat = [r for c in chains for r in c]
        assert sorted(flat) == list(range(sf5.num_routers))

    def test_chain_steps_mostly_adjacent(self, sf5):
        # Dead-ended walk fragments are merged onto the previous chain,
        # so a few junction steps may be non-adjacent; the bulk of the
        # walk must follow edges.
        good = bad = 0
        for chain in slimfly_worst_case_chains(sf5, seed=0):
            for a, b in zip(chain[:-1], chain[1:]):
                if sf5.is_edge(a, b):
                    good += 1
                else:
                    bad += 1
        assert bad <= 0.1 * (good + bad)

    def test_chains_long_enough(self, sf5):
        for chain in slimfly_worst_case_chains(sf5, seed=0):
            assert len(chain) >= 3

    def test_most_pairs_at_distance_two(self, sf5):
        # The greedy walk prefers distance-2 pairings; the vast
        # majority of (i, i+2) pairs must be non-adjacent.
        chains = slimfly_worst_case_chains(sf5, seed=0)
        good = bad = 0
        for chain in chains:
            n = len(chain)
            for i in range(n):
                a, b = chain[i], chain[(i + 2) % n]
                if sf5.is_edge(a, b) or a == b:
                    bad += 1
                else:
                    good += 1
        assert good / (good + bad) > 0.85

    def test_reproducible(self, sf5):
        assert slimfly_worst_case_chains(sf5, seed=4) == slimfly_worst_case_chains(sf5, seed=4)


class TestPermutationValidity:
    @pytest.mark.parametrize("builder", [
        lambda: worst_case_traffic(SlimFly(5), seed=1),
        lambda: worst_case_traffic(MLFM(4)),
        lambda: worst_case_traffic(OFT(4)),
    ])
    def test_is_full_permutation(self, builder):
        wc = builder()
        dst = wc.destinations
        assert sorted(dst) == list(range(len(dst)))
        assert not np.any(dst == np.arange(len(dst)))


class TestAnalyticSaturation:
    """The headline Sec. 4.2 saturation bounds, verified analytically."""

    def test_sf_one_over_2p(self, sf5):
        wc = worst_case_traffic(sf5, seed=1)
        loads = channel_loads_minimal(sf5, permutation_flows(wc.destinations))
        sat = saturation_throughput(loads)
        expected = 1.0 / (2 * sf5.p)
        assert sat == pytest.approx(expected, rel=0.15)

    def test_mlfm_one_over_h(self, mlfm4):
        wc = worst_case_traffic(mlfm4)
        loads = channel_loads_minimal(mlfm4, permutation_flows(wc.destinations))
        assert saturation_throughput(loads) == pytest.approx(1.0 / mlfm4.h)

    def test_oft_one_over_k(self, oft4):
        wc = worst_case_traffic(oft4)
        loads = channel_loads_minimal(oft4, permutation_flows(wc.destinations))
        assert saturation_throughput(loads) == pytest.approx(1.0 / oft4.k)

    def test_sf_larger_instance(self):
        sf = SlimFly(7)
        wc = worst_case_traffic(sf, seed=1)
        loads = channel_loads_minimal(sf, permutation_flows(wc.destinations))
        assert saturation_throughput(loads) == pytest.approx(1.0 / (2 * sf.p), rel=0.15)
