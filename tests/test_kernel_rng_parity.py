"""Draw-order parity of the kernel's C random-number replica.

The C fast path (``_kernel.c``) carries a Mersenne-Twister replica of
``random.Random`` so routing decisions made in C consume *exactly* the
draw sequence the Python implementations would: same values, same
number of raw ``getrandbits`` words per call (the rejection loop in
``_randbelow``), same generator state afterwards.  The golden
conformance suite pins this end to end; these tests pin it per draw
site, so a parity break fails with the offending bound rather than a
digest mismatch.

``_kernel._rng_parity(rng, ops)`` is the test hook: it imports *rng*'s
state into the C replica, executes the op list C-side, exports the
state back into *rng*, and returns the drawn values.
"""

from __future__ import annotations

import random

import pytest

from repro.sim.vec.kernel import load_kernel

_mod = load_kernel()

pytestmark = pytest.mark.skipif(
    _mod is None,
    reason="compiled kernel unavailable (no compiler or REPRO_NO_KERNEL set)",
)

#: The bounds the routing layer actually draws with (candidate-set
#: sizes, router counts) plus adversarial ones: the degenerate n=1
#: (still consumes draws!), exact powers of two (no rejection), one
#: above/below a power of two (maximal rejection probability), odd
#: moduli, and a large bound near the 32-bit draw width.
RANDBELOW_BOUNDS = [
    1, 2, 3, 4, 5, 6, 7, 8, 9, 15, 16, 17, 31, 32, 33,
    97, 98, 255, 256, 257, 489, 490, 1024, 1025,
    2**20, 2**20 + 7, 2**31 - 1,
]


def c_draws(rng: random.Random, ops):
    return _mod._rng_parity(rng, ops)


class TestDrawParity:
    @pytest.mark.parametrize("n", RANDBELOW_BOUNDS)
    def test_randbelow_values_and_state(self, n):
        # Same seed, two generators: C must produce the Python values
        # AND leave the generator in the Python state (a rejection-loop
        # mismatch shows up in the state even when values agree).
        ref = random.Random(1234 + n)
        c = random.Random(1234 + n)
        want = [ref._randbelow(n) for _ in range(200)]
        got = c_draws(c, [("randbelow", n)] * 200)
        assert got == want
        assert c.getstate() == ref.getstate()

    @pytest.mark.parametrize("k", list(range(1, 33)))
    def test_getrandbits_values_and_state(self, k):
        ref = random.Random(99 + k)
        c = random.Random(99 + k)
        want = [ref.getrandbits(k) for _ in range(100)]
        got = c_draws(c, [("getrandbits", k)] * 100)
        assert got == want
        assert c.getstate() == ref.getstate()

    def test_randbelow_matches_randrange_sites(self):
        # The routing code draws via ``rng.randrange(len(candidates))``
        # and the bound ``_randbelow``; both must map onto the C op.
        ref = random.Random(7)
        c = random.Random(7)
        bounds = [3, 1, 8, 5, 2, 13, 1, 64, 7]
        want = [ref.randrange(n) for n in bounds]
        got = c_draws(c, [("randbelow", n) for n in bounds])
        assert got == want
        assert c.getstate() == ref.getstate()

    def test_mixed_op_stream(self):
        # Interleaved op kinds on one stream, across a reseed boundary
        # of the underlying MT block (624 words) so the C refill path
        # is exercised too.
        ref = random.Random(42)
        c = random.Random(42)
        ops, want = [], []
        mix = random.Random(5)
        for _ in range(2000):  # >> 624 words: several MT refills
            if mix.random() < 0.5:
                n = mix.choice(RANDBELOW_BOUNDS)
                ops.append(("randbelow", n))
                want.append(ref._randbelow(n))
            else:
                k = mix.randrange(1, 33)
                ops.append(("getrandbits", k))
                want.append(ref.getrandbits(k))
        assert c_draws(c, ops) == want
        assert c.getstate() == ref.getstate()


class TestStateHandoff:
    def test_alternating_c_and_python_share_one_stream(self):
        # The residency contract: a run alternates C fast-path packets
        # with Python escape packets (scheduled CALLs submitting
        # traffic), all drawing from ONE logical stream.  Alternating
        # C-side and Python-side draws on the same object must replay a
        # pure-Python reference exactly.
        ref = random.Random(2024)
        shared = random.Random(2024)
        want, got = [], []
        for i in range(50):
            n = RANDBELOW_BOUNDS[i % len(RANDBELOW_BOUNDS)]
            want.append(ref._randbelow(n))      # "C packet"
            want.append(ref._randbelow(n + 1))  # "Python escape packet"
            got.extend(c_draws(shared, [("randbelow", n)]))
            got.append(shared._randbelow(n + 1))
        assert got == want
        assert shared.getstate() == ref.getstate()

    def test_import_export_is_lossless_mid_rejection_history(self):
        # Exporting after draws that hit the rejection loop must hand
        # back a state from which Python continues bit-identically.
        ref = random.Random(3)
        c = random.Random(3)
        for _ in range(10):
            ref._randbelow(2**20 + 7)  # ~50% rejection per draw
        c_draws(c, [("randbelow", 2**20 + 7)] * 10)
        assert [ref.getrandbits(32) for _ in range(700)] == [
            c.getrandbits(32) for _ in range(700)
        ]

    def test_gauss_sidecar_survives_roundtrip(self):
        # random.Random's state tuple carries the gauss_next sidecar;
        # the C replica never touches it but must preserve it.
        rng = random.Random(11)
        rng.gauss(0, 1)  # prime gauss_next
        before = rng.getstate()
        c_draws(rng, [("randbelow", 5)])
        after = rng.getstate()
        assert after[2] == before[2]  # the gauss sidecar slot

    def test_mid_run_python_send_preserves_conformance(self):
        # Simulation-level proof: packets submitted from a *scheduled
        # CALL escape* mid-run (the path that hands the resident RNG
        # state out to Python and back) leave kernel and batched runs
        # bit-identical -- same delivery stream, same final RNG states.
        import hashlib

        from repro.routing import UGALRouting
        from repro.sim import Network, SimConfig
        from repro.topology import SlimFly
        from repro.traffic import UniformRandom

        def run(backend: str):
            topo = SlimFly(5)
            net = Network(topo, UGALRouting(topo, seed=0),
                          SimConfig(backend=backend))
            digest = hashlib.sha256()
            net.add_delivery_listener(
                lambda p: digest.update(
                    f"{p.pid}:{p.src_node}:{p.dst_node}:{p.kind}:"
                    f"{p.eject_time!r};".encode()
                )
            )
            # Mid-run Python sends: scheduled CALLs that submit fresh
            # packets through the NIC while the fast path is resident.
            nics = net.nics
            for i, t in enumerate((350.0, 620.0, 910.0)):
                net.engine.schedule(
                    t, nics[i % len(nics)].submit,
                    (i * 7 + 3) % topo.num_nodes, 64,
                )
            stats = net.run_synthetic(
                UniformRandom(topo.num_nodes), load=0.4,
                warmup_ns=300.0, measure_ns=1000.0, seed=9, drain=True,
            )
            routing = net.routing
            return (
                digest.hexdigest(),
                net.stats.ejected_total,
                stats.throughput,
                stats.mean_latency_ns,
                routing._minimal._rng.getstate(),
                routing._indirect._rng.getstate(),
            )

        assert run("kernel") == run("batched")
