"""White-box tests of switch internals: buffer occupancy accounting,
credit conservation, output-queue capacity and the UGAL `queued` signal."""

import pytest

from repro.routing import MinimalRouting
from repro.sim import Network, SimConfig
from repro.topology.base import Topology


def line3(p=1):
    return Topology("line3", [[1], [0, 2], [1]], [p, p, p])


def drain(net):
    net.engine.run()


class TestQueuedSignal:
    def test_counts_in_transit_packets(self):
        topo = line3()
        cfg = SimConfig()
        net = Network(topo, MinimalRouting(topo, seed=1), cfg)
        # Inject 5 packets from node 0 to node 2 (through router 1) but
        # advance time only a little: the middle router's output toward
        # router 2 should report queued packets while they sit there.
        nic = net.nics[0]
        for _ in range(5):
            nic.submit(2, 256)
        # Run until the first packets reach router 1 but before all
        # have left it.
        net.engine.run(until=250.0)
        mid_queue = net.queue_len(1, 2)
        assert mid_queue >= 1
        drain(net)
        assert net.queue_len(1, 2) == 0

    def test_zero_after_drain_everywhere(self):
        topo = line3(p=2)
        net = Network(topo, MinimalRouting(topo, seed=1))
        for node, dst in ((0, 4), (1, 5), (4, 0)):
            net.nics[node].submit(dst, 256)
        drain(net)
        for r in range(topo.num_routers):
            for n in topo.neighbors(r):
                assert net.queue_len(r, n) == 0


class TestCreditConservation:
    def test_credits_restored_after_drain(self):
        topo = line3(p=2)
        cfg = SimConfig(buffer_bytes_per_port=1024)
        net = Network(topo, MinimalRouting(topo, seed=1), cfg)
        initial = {}
        for r, router in enumerate(net.routers):
            for out in router.out:
                if out.credits is not None:
                    initial[(r, out.out_idx)] = list(out.credits)
        for _ in range(20):
            net.nics[0].submit(4, 256)
            net.nics[4].submit(0, 256)
        drain(net)
        for r, router in enumerate(net.routers):
            for out in router.out:
                if out.credits is not None:
                    assert out.credits == initial[(r, out.out_idx)], (r, out.out_idx)

    def test_output_queues_empty_after_drain(self):
        topo = line3(p=2)
        net = Network(topo, MinimalRouting(topo, seed=1))
        for _ in range(10):
            net.nics[0].submit(5, 256)
        drain(net)
        for router in net.routers:
            for out in router.out:
                assert all(not q for q in out.oq)
                assert all(o == 0 for o in out.oq_occ)
                assert not out.busy

    def test_input_buffers_empty_after_drain(self):
        topo = line3(p=2)
        net = Network(topo, MinimalRouting(topo, seed=1))
        for _ in range(10):
            net.nics[1].submit(4, 256)
        drain(net)
        for router in net.routers:
            for per_vc in router.in_q:
                assert all(not q for q in per_vc)


class TestAdmitPending:
    """Head-of-line admission semantics of Router._admit_pending.

    The scan must admit the first pending input (in deque order) whose
    head packet targets the freed output VC, move the skipped entries to
    the back (the historical rotate-until-match behaviour, which seeded
    simulations depend on for bit-identical replay), and leave the deque
    untouched when nothing matches.
    """

    @staticmethod
    def _net():
        topo = line3(p=2)
        return Network(topo, MinimalRouting(topo, seed=1))

    @staticmethod
    def _pkt(pid, out_vc):
        from repro.sim.packet import Packet

        # hop = 0, so the packet's next-hop output VC is vcs[0].
        return Packet(
            pid=pid, src_node=0, dst_node=4, size=256,
            routers=(0, 1), ports=(0, 0), vcs=(out_vc,),
            kind="minimal", gen_time=0.0,
        )

    def _stage(self, net, router, entries):
        """Place fake head packets and fill pending_inputs accordingly."""
        pending = router.out[0].pending_inputs
        pending.clear()
        for in_idx, (pid, out_vc) in enumerate(entries):
            router.in_q[in_idx][0].clear()
            router.in_q[in_idx][0].append(self._pkt(pid, out_vc))
            pending.append((in_idx, 0))
        return pending

    def _capture_transfers(self, monkeypatch):
        from repro.sim.switch import Router

        calls = []
        monkeypatch.setattr(
            Router, "_try_transfer", lambda self, in_idx, vc: calls.append((in_idx, vc))
        )
        return calls

    def test_admits_first_match_at_front(self, monkeypatch):
        net = self._net()
        router = net.routers[1]
        pending = self._stage(net, router, [(1, 0), (2, 1)])
        calls = self._capture_transfers(monkeypatch)
        router._admit_pending(router.out[0], freed_vc=0)
        assert calls == [(0, 0)]
        assert list(pending) == [(1, 0)]

    def test_match_in_middle_rotates_skipped_to_back(self, monkeypatch):
        net = self._net()
        router = net.routers[1]
        # Inputs 0/1/2 head packets target VCs 1, 0, 1; freeing VC 0 must
        # admit input 1 and leave [input2, input0] (skipped entry at back).
        pending = self._stage(net, router, [(1, 1), (2, 0), (3, 1)])
        calls = self._capture_transfers(monkeypatch)
        router._admit_pending(router.out[0], freed_vc=0)
        assert calls == [(1, 0)]
        assert list(pending) == [(2, 0), (0, 0)]

    def test_no_match_leaves_deque_unchanged(self, monkeypatch):
        net = self._net()
        router = net.routers[1]
        pending = self._stage(net, router, [(1, 1), (2, 1)])
        calls = self._capture_transfers(monkeypatch)
        router._admit_pending(router.out[0], freed_vc=0)
        assert calls == []
        assert list(pending) == [(0, 0), (1, 0)]

    def test_head_of_line_pressure_still_delivers_everything(self):
        # One-packet output buffers + bidirectional cross traffic keep
        # pending_inputs populated with mixed target VCs; every packet
        # must still be admitted and delivered eventually.
        cfg = SimConfig(buffer_bytes_per_port=256)
        topo = line3(p=2)
        net = Network(topo, MinimalRouting(topo, seed=1), cfg)
        for _ in range(25):
            net.nics[0].submit(4, 256)
            net.nics[1].submit(5, 256)
            net.nics[4].submit(0, 256)
            net.nics[5].submit(1, 256)
        drain(net)
        assert net.stats.ejected_total == 100


class TestCreditExhaustionRoundRobin:
    """The modulo-free VC round-robin of Router._try_transmit under
    credit exhaustion: VCs without downstream credit must be skipped,
    the rotation pointer must wrap without `%` in the scan loop, and
    full backpressure (no credits anywhere) must transmit nothing."""

    @staticmethod
    def _net(num_vcs=2):
        from repro.routing.vc import HopIndexVC

        topo = line3(p=2)
        return Network(
            topo, MinimalRouting(topo, vc_policy=HopIndexVC(num_vcs, num_vcs), seed=1)
        )

    @staticmethod
    def _pkt(pid):
        from repro.sim.packet import Packet

        return Packet(
            pid=pid, src_node=0, dst_node=4, size=256,
            routers=(1, 2), ports=(1, 0), vcs=(0,),
            kind="minimal", gen_time=0.0,
        )

    def _stage(self, router, out, per_vc_pids):
        """Place packets directly into the output queues."""
        total = 0
        for vc, pids in per_vc_pids.items():
            for pid in pids:
                out.oq[vc].append(self._pkt(pid))
            out.oq_occ[vc] = len(pids)
            total += len(pids)
        out.queued = total
        return out

    def test_exhausted_vc_is_skipped(self):
        net = self._net()
        router = net.routers[1]
        out = self._stage(router, router.out[1], {0: [1], 1: [2]})
        out.credits[0] = 0  # VC 0 exhausted, VC 1 still has credit
        out.rr_vc = 0
        before_vc1 = out.credits[1]
        router._try_transmit(out)
        assert out.sent_packets == 1
        assert [len(q) for q in out.oq] == [1, 0]  # VC 1 transmitted
        assert out.credits[1] == before_vc1 - 1
        assert out.credits[0] == 0  # untouched
        assert out.rr_vc == 0  # (1 + 1) % 2: pointer advanced past VC 1
        assert out.busy

    def test_full_backpressure_transmits_nothing(self):
        net = self._net()
        router = net.routers[1]
        out = self._stage(router, router.out[1], {0: [1], 1: [2]})
        out.credits[0] = out.credits[1] = 0
        router._try_transmit(out)
        assert out.sent_packets == 0
        assert not out.busy
        assert [len(q) for q in out.oq] == [1, 1]
        assert out.rr_vc == 0  # pointer only moves on a transmission

    def test_wraparound_scan_with_four_vcs(self):
        # rr_vc starts past the only serviceable VCs, so the scan must
        # wrap (the `vc -= num_vcs` path) to find them.
        net = self._net(num_vcs=4)
        router = net.routers[1]
        out = self._stage(router, router.out[1], {1: [1], 3: [2]})
        out.credits[0] = out.credits[2] = 0  # irrelevant: those queues are empty
        out.rr_vc = 3
        router._try_transmit(out)
        assert [len(q) for q in out.oq] == [0, 1, 0, 0]  # VC 3 went first
        assert out.rr_vc == 0  # (3 + 1) % 4
        out.busy = False
        router._try_transmit(out)
        assert [len(q) for q in out.oq] == [0, 0, 0, 0]  # then wrapped to VC 1
        assert out.rr_vc == 2
        assert out.sent_packets == 2

    def test_alternates_fairly_when_both_vcs_ready(self):
        net = self._net()
        router = net.routers[1]
        out = self._stage(router, router.out[1], {0: [1, 3], 1: [2, 4]})
        order = []
        for _ in range(4):
            router._try_transmit(out)
            order.append(out.rr_vc)
            out.busy = False
        # rr_vc lands one past the transmitted VC, so the rotation
        # alternated VC 0, VC 1, VC 0, VC 1 -- no VC starves.
        assert order == [1, 0, 1, 0]
        assert all(not q for q in out.oq)

    def test_exhaustion_end_to_end_under_checker(self):
        # Two-packet port buffers (one credit per VC) plus bursty
        # bidirectional traffic drive every credit counter to zero
        # repeatedly; the invariant checker verifies the credit loops on
        # every transition and quiescence at the end.
        cfg = SimConfig(check=True, buffer_bytes_per_port=512)
        topo = line3(p=2)
        net = Network(topo, MinimalRouting(topo, seed=1), cfg)
        for _ in range(25):
            net.nics[0].submit(4, 256)
            net.nics[1].submit(5, 256)
            net.nics[4].submit(0, 256)
            net.nics[5].submit(1, 256)
        drain(net)
        assert net.stats.ejected_total == 100
        assert not net.checker.location
        # The injection buffers (2 slots) really were exhausted.
        assert any(nic.credit_stalls > 0 for nic in net.nics)


class TestCapacityEnforcement:
    def test_tiny_output_queue_causes_pending(self):
        # One-packet buffers force the pending-input path to exercise.
        cfg = SimConfig(buffer_bytes_per_port=256)
        topo = line3(p=2)
        net = Network(topo, MinimalRouting(topo, seed=1), cfg)
        for _ in range(30):
            net.nics[0].submit(4, 256)
            net.nics[1].submit(5, 256)
        drain(net)
        assert net.stats.ejected_total == 60

    def test_sent_packet_counters_match_traffic(self):
        topo = line3()
        net = Network(topo, MinimalRouting(topo, seed=1))
        for _ in range(7):
            net.nics[0].submit(2, 256)
        drain(net)
        # Router 0 -> 1 and router 1 -> 2 each carried all 7 packets.
        out01 = net.routers[0].out[topo.port(0, 1)]
        out12 = net.routers[1].out[topo.port(1, 2)]
        assert out01.sent_packets == 7
        assert out12.sent_packets == 7
