"""Unit tests for the statistics collector."""

import pytest

from repro.sim.config import PAPER_CONFIG
from repro.sim.packet import Packet
from repro.sim.stats import StatsCollector


def make_packet(pid, src=0, dst=1, size=256, gen=0.0):
    return Packet(
        pid=pid, src_node=src, dst_node=dst, size=size,
        routers=(0, 1), ports=(0, 0), vcs=(0,), kind="minimal", gen_time=gen,
    )


class TestWindowing:
    def test_only_window_ejections_counted(self):
        sc = StatsCollector(4, PAPER_CONFIG)
        sc.set_window(100.0, 200.0)
        early = make_packet(1)
        early.send_time = 0.0
        early.eject_time = 50.0
        sc.record_inject(early)
        sc.record_eject(early)
        inside = make_packet(2)
        inside.send_time = 110.0
        inside.eject_time = 150.0
        sc.record_inject(inside)
        sc.record_eject(inside)
        late = make_packet(3)
        late.send_time = 210.0
        late.eject_time = 260.0
        sc.record_inject(late)
        sc.record_eject(late)
        assert sc.in_window_ejected == 1
        assert sc.in_window_injected == 1
        assert sc.ejected_total == 3

    def test_throughput_normalisation(self):
        sc = StatsCollector(2, PAPER_CONFIG)
        sc.set_window(0.0, 100.0)
        # Capacity: 2 nodes * 100ns * 12.5 B/ns = 2500 B.
        p = make_packet(1, size=250)
        p.send_time = 1.0
        p.eject_time = 50.0
        sc.record_inject(p)
        sc.record_eject(p)
        stats = sc.window_stats()
        assert stats.throughput == pytest.approx(0.1)

    def test_latency_from_generation(self):
        sc = StatsCollector(2, PAPER_CONFIG)
        sc.set_window(0.0, 100.0)
        p = make_packet(1, gen=10.0)
        p.send_time = 20.0
        p.eject_time = 60.0
        sc.record_inject(p)
        sc.record_eject(p)
        assert sc.window_stats().mean_latency_ns == pytest.approx(50.0)

    def test_unbounded_window_rejected_for_window_stats(self):
        sc = StatsCollector(2, PAPER_CONFIG)
        sc.set_window(0.0, None)
        with pytest.raises(ValueError):
            sc.window_stats()

    def test_kind_counts(self):
        sc = StatsCollector(2, PAPER_CONFIG)
        sc.set_window(0.0, 100.0)
        for pid, kind in ((1, "minimal"), (2, "minimal"), (3, "indirect")):
            p = make_packet(pid)
            p.kind = kind
            p.send_time = 1.0
            p.eject_time = 10.0
            sc.record_inject(p)
            sc.record_eject(p)
        assert sc.window_stats().kind_counts == {"minimal": 2, "indirect": 1}


class TestEffectiveThroughput:
    def test_simple_case(self):
        sc = StatsCollector(2, PAPER_CONFIG)
        sc.set_window(0.0, None)
        p = make_packet(1, size=2500)
        p.send_time = 0.0
        p.eject_time = 100.0
        sc.record_inject(p)
        sc.record_eject(p)
        # 2500 B / (100 ns * 2 nodes * 12.5 B/ns) = 1.0.
        assert sc.effective_throughput(2500) == pytest.approx(1.0)

    def test_no_traffic_rejected(self):
        sc = StatsCollector(2, PAPER_CONFIG)
        with pytest.raises(ValueError):
            sc.effective_throughput(100)

    def test_reset_clears(self):
        sc = StatsCollector(2, PAPER_CONFIG)
        sc.set_window(0.0, 100.0)
        p = make_packet(1)
        p.send_time = 1.0
        p.eject_time = 2.0
        sc.record_inject(p)
        sc.record_eject(p)
        sc.reset()
        assert sc.injected_total == 0
        assert sc.ejected_total == 0
        assert sc.first_inject is None


class TestPacket:
    def test_num_hops(self):
        p = make_packet(1)
        assert p.num_hops == 1

    def test_repr_smoke(self):
        assert "Packet" in repr(make_packet(1))


class TestFairnessIndex:
    def test_perfectly_even(self):
        sc = StatsCollector(4, PAPER_CONFIG)
        sc.set_window(0.0, 100.0)
        for pid in range(8):
            p = make_packet(pid, dst=pid % 4)
            p.send_time = 1.0
            p.eject_time = 2.0
            sc.record_inject(p)
            sc.record_eject(p)
        assert sc.fairness_index() == pytest.approx(1.0)

    def test_single_receiver(self):
        sc = StatsCollector(4, PAPER_CONFIG)
        sc.set_window(0.0, 100.0)
        for pid in range(8):
            p = make_packet(pid, dst=2)
            p.send_time = 1.0
            p.eject_time = 2.0
            sc.record_inject(p)
            sc.record_eject(p)
        assert sc.fairness_index() == pytest.approx(0.25)

    def test_no_traffic_rejected(self):
        sc = StatsCollector(4, PAPER_CONFIG)
        with pytest.raises(ValueError):
            sc.fairness_index()

    def test_uniform_simulation_fair(self):
        from repro.routing import MinimalRouting
        from repro.sim import Network
        from repro.topology import SlimFly
        from repro.traffic import UniformRandom

        topo = SlimFly(4)
        net = Network(topo, MinimalRouting(topo, seed=1))
        net.run_synthetic(
            UniformRandom(topo.num_nodes), load=0.5,
            warmup_ns=1000, measure_ns=4000, seed=3, drain=True,
        )
        assert net.stats.fairness_index() > 0.95
