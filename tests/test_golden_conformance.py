"""Golden conformance suite (see repro.experiments.conformance).

The committed fingerprints pin the simulator's end-to-end behaviour --
full WindowStats plus a digest over the ordered delivery stream -- for
every tiny-scale topology x routing combination.  Serial, process-pool,
legacy-routing, checker-enabled and batched-backend runs must all
reproduce them bit-identically; an intended behaviour change
regenerates the goldens
(``python -m repro.experiments.conformance --write``) so the diff is
reviewed with the change that caused it.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from pathlib import Path

import pytest

from repro.experiments import conformance
from repro.sim.vec.kernel import load_kernel as _load_kernel

GOLDEN = Path(__file__).parent / "golden" / "conformance.json"

#: One case per topology for the expensive re-runs (legacy routing,
#: process pool); the full matrix runs serially and under the checker.
SPOT_CASES = ["sf-floor/ugal", "sf-ceil/min", "mlfm/inr", "oft/ugal"]


@pytest.fixture(scope="module")
def golden():
    return conformance.load_golden(str(GOLDEN))


def test_case_keys_cover_all_combinations():
    # 4 evaluation configs x 3 routings, and the golden file has them all.
    assert len(conformance.CASE_KEYS) == 12
    assert set(conformance.load_golden(str(GOLDEN))) == set(conformance.CASE_KEYS)
    assert set(SPOT_CASES) <= set(conformance.CASE_KEYS)


@pytest.mark.parametrize("case_key", conformance.CASE_KEYS)
def test_serial_matches_golden(golden, case_key):
    got = conformance.run_case(case_key)
    problems = conformance.diff_fingerprints({case_key: golden[case_key]},
                                             {case_key: got})
    assert not problems, "\n".join(problems)


@pytest.mark.parametrize("case_key", conformance.CASE_KEYS)
def test_checker_preserves_physics(golden, case_key):
    # Acceptance: --check runs every configs combination without a
    # violation, and the checked run's observable behaviour (stats and
    # delivery stream) is identical to the unchecked golden.
    got = conformance.run_case(case_key, check=True)
    problems = conformance.diff_fingerprints({case_key: golden[case_key]},
                                             {case_key: got})
    assert not problems, "\n".join(problems)


@pytest.mark.parametrize("case_key", conformance.CASE_KEYS)
def test_batched_backend_matches_golden(golden, case_key):
    # The tentpole contract of the batched backend: every committed
    # fingerprint -- WindowStats and the ordered delivery stream, which
    # encodes RNG draw order and every arbitration decision -- is
    # reproduced bit-identically by the struct-of-arrays engine.
    got = conformance.run_case(case_key, backend="batched")
    problems = conformance.diff_fingerprints({case_key: golden[case_key]},
                                             {case_key: got})
    assert not problems, "\n".join(problems)


@pytest.mark.parametrize("case_key", SPOT_CASES)
def test_checked_batched_matches_golden(golden, case_key):
    # The audit-based BatchedChecker must not perturb event order:
    # checked batched runs reproduce the goldens too.
    got = conformance.run_case(case_key, check=True, backend="batched")
    problems = conformance.diff_fingerprints({case_key: golden[case_key]},
                                             {case_key: got})
    assert not problems, "\n".join(problems)


needs_kernel = pytest.mark.skipif(
    _load_kernel() is None,
    reason="compiled kernel unavailable (no compiler or REPRO_NO_KERNEL set)",
)


@needs_kernel
@pytest.mark.parametrize("check,fastpath", [
    (False, True),   # route fast path live (the production default)
    (False, False),  # REPRO_KERNEL_NO_FASTPATH: per-packet escapes
    (True, True),    # checker wraps make_packet: fast path self-gates
])
@pytest.mark.parametrize("case_key", conformance.CASE_KEYS)
def test_kernel_backend_matches_golden(golden, case_key, check, fastpath,
                                       monkeypatch):
    # The compiled-kernel acceptance bar: every committed fingerprint is
    # reproduced bit-identically by the C dispatch core -- checked (the
    # audit-based BatchedChecker over kernel runs), unchecked with the
    # C route-selection fast path live (where the delivery listener
    # forces only the deliver escape), and with the fast path disabled
    # via the REPRO_KERNEL_NO_FASTPATH escape hatch.  The on/off pair
    # is the differential gate on the C routing + RNG replica itself.
    if fastpath:
        monkeypatch.delenv("REPRO_KERNEL_NO_FASTPATH", raising=False)
    else:
        monkeypatch.setenv("REPRO_KERNEL_NO_FASTPATH", "1")
    got = conformance.run_case(case_key, check=check, backend="kernel")
    problems = conformance.diff_fingerprints({case_key: golden[case_key]},
                                             {case_key: got})
    assert not problems, "\n".join(problems)


@needs_kernel
@pytest.mark.parametrize("case_key", conformance.CASE_KEYS)
def test_kernel_no_listener_stats_match_golden(golden, case_key):
    # Without a delivery listener the kernel's C delivery-accounting
    # fast path is live (no per-packet deliver escape at all); the
    # WindowStats it accumulates C-side -- including the order-
    # sensitive latency reductions -- must still equal the goldens.
    got = conformance.run_case(case_key, backend="kernel", listener=False)
    assert got["digest"] is None  # stats-only fingerprint
    problems = conformance.diff_fingerprints({case_key: golden[case_key]},
                                             {case_key: got})
    assert not problems, "\n".join(problems)


@pytest.mark.parametrize("case_key", SPOT_CASES)
def test_legacy_routing_matches_golden(golden, case_key):
    got = conformance.run_case(case_key, compiled=False)
    problems = conformance.diff_fingerprints({case_key: golden[case_key]},
                                             {case_key: got})
    assert not problems, "\n".join(problems)


def test_process_pool_matches_golden(golden):
    with ProcessPoolExecutor(max_workers=2) as pool:
        results = list(pool.map(conformance.run_case, SPOT_CASES))
    computed = dict(zip(SPOT_CASES, results))
    problems = conformance.diff_fingerprints(
        {key: golden[key] for key in SPOT_CASES}, computed
    )
    assert not problems, "\n".join(problems)


# -- fault-schedule golden (repro.resilience) -------------------------------

FAULT_GOLDEN = Path(__file__).parent / "golden" / "fault_conformance.json"


@pytest.fixture(scope="module")
def fault_golden():
    return conformance.load_fault_golden(str(FAULT_GOLDEN))


@pytest.mark.parametrize("check,backend", [
    (False, "object"),
    (True, "object"),
    (False, "batched"),
    (True, "batched"),
    pytest.param(False, "kernel", marks=needs_kernel),
    pytest.param(True, "kernel", marks=needs_kernel),
])
def test_fault_case_matches_golden(fault_golden, check, backend):
    # The deterministic fault-schedule run (fail + recover + seeded
    # drip, mid-measurement) must reproduce the committed fingerprint
    # -- delivery stream, stats AND reroute counts -- on every backend,
    # checked and unchecked.  The kernel rows exercise the fault
    # divert escape (ENTER on a dead port) and the fail-time drain
    # through the engine's cold-path mirrors.
    got = conformance.run_fault_case(check=check, backend=backend)
    problems = conformance.diff_fault_fingerprint(fault_golden, got)
    assert not problems, "\n".join(problems)


@pytest.mark.parametrize("check", [False, True])
def test_fault_case_kernel_no_fastpath_matches_golden(fault_golden, check,
                                                      monkeypatch):
    # The fault golden again with the kernel fast paths forced off:
    # both halves of the escape hatch must reproduce the same
    # fingerprint, or the hatch itself would mask a fast-path bug.
    if _load_kernel() is None:
        pytest.skip("compiled kernel unavailable")
    monkeypatch.setenv("REPRO_KERNEL_NO_FASTPATH", "1")
    got = conformance.run_fault_case(check=check, backend="kernel")
    problems = conformance.diff_fault_fingerprint(fault_golden, got)
    assert not problems, "\n".join(problems)


def test_fault_case_matches_golden_in_pool(fault_golden):
    with ProcessPoolExecutor(max_workers=1) as pool:
        got = pool.submit(conformance.run_fault_case).result()
    problems = conformance.diff_fault_fingerprint(fault_golden, got)
    assert not problems, "\n".join(problems)


def test_fault_diff_reports_fault_counters(fault_golden):
    mutated = {
        "stats": dict(fault_golden["stats"]),
        "digest": fault_golden["digest"],
        "delivered": fault_golden["delivered"],
        "faults": dict(fault_golden["faults"], reroutes=-1),
    }
    problems = conformance.diff_fault_fingerprint(fault_golden, mutated)
    assert any("faults.reroutes changed" in p for p in problems)


def test_diff_reports_are_actionable(golden):
    # The diff helper names the case, the field and both values --
    # that's what makes a golden failure debuggable.
    ref = golden["oft/min"]
    mutated = {
        "stats": dict(ref["stats"], ejected_packets=-1),
        "digest": "0" * 64,
        "delivered": 0,
    }
    problems = conformance.diff_fingerprints({"oft/min": ref}, {"oft/min": mutated})
    assert any("digest changed" in p for p in problems)
    assert any("stats.ejected_packets changed" in p for p in problems)
    assert conformance.diff_fingerprints({"oft/min": ref}, {}) == [
        "oft/min: missing from computed set"
    ]
