"""Unit tests for the Multi-Layer Full-Mesh topology (Sec. 2.2.3)."""

import pytest

from repro.topology import MLFM
from repro.topology.base import LINK_DOWN, LINK_UP
from repro.topology.validate import validate_topology


class TestCounts:
    @pytest.mark.parametrize("h", [2, 3, 4, 5, 7])
    def test_formulas(self, h):
        t = MLFM(h)
        assert t.num_nodes == MLFM.expected_num_nodes(h) == h**3 + h**2
        assert t.num_routers == MLFM.expected_num_routers(h) == 3 * h * (h + 1) // 2
        assert t.num_local_routers == h * (h + 1)
        assert t.num_global_routers == h * (h + 1) // 2

    @pytest.mark.parametrize("h", [3, 5, 7])
    def test_uniform_radix_2h(self, h):
        t = MLFM(h)
        assert {t.radix(r) for r in range(t.num_routers)} == {2 * h}

    def test_paper_configuration_h15(self):
        t = MLFM(15)
        assert (t.num_nodes, t.num_routers, t.max_radix()) == (3600, 360, 30)

    @pytest.mark.parametrize("h", [3, 4, 5])
    def test_cost_exactly_3_and_2(self, h):
        t = MLFM(h)
        assert t.ports_per_node() == pytest.approx(3.0)
        assert t.links_per_node() == pytest.approx(2.0)

    @pytest.mark.parametrize("h", [3, 4, 5])
    def test_validates(self, h):
        report = validate_topology(MLFM(h))
        assert report.ok, report.problems


class TestGeneralForm:
    def test_custom_l_p(self):
        t = MLFM(4, l=2, p=3)
        assert t.num_local_routers == 2 * 5
        assert t.num_nodes == 30
        # LR radix h + p = 7; GR radix 2l = 4.
        assert t.radix(0) == 7
        assert t.radix(t.num_local_routers) == 4

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            MLFM(0)
        with pytest.raises(ValueError):
            MLFM(3, l=0)
        with pytest.raises(ValueError):
            MLFM(3, p=-1)


class TestStructure:
    def test_local_router_predicates(self, mlfm4):
        for r in range(mlfm4.num_routers):
            assert mlfm4.is_local(r) == (r < mlfm4.num_local_routers)

    def test_layer_and_column(self, mlfm4):
        h = mlfm4.h
        for r in range(mlfm4.num_local_routers):
            assert mlfm4.layer_of(r) == r // (h + 1)
            assert mlfm4.column_of(r) == r % (h + 1)

    def test_layer_of_rejects_gr(self, mlfm4):
        with pytest.raises(ValueError):
            mlfm4.layer_of(mlfm4.num_local_routers)

    def test_gr_pair_rejects_lr(self, mlfm4):
        with pytest.raises(ValueError):
            mlfm4.gr_pair(0)

    def test_gr_connects_pair_in_every_layer(self, mlfm4):
        h = mlfm4.h
        for g in range(mlfm4.num_local_routers, mlfm4.num_routers):
            a, b = mlfm4.gr_pair(g)
            neighbors = set(mlfm4.neighbors(g))
            expected = set()
            for layer in range(mlfm4.l):
                expected.add(layer * (h + 1) + a)
                expected.add(layer * (h + 1) + b)
            assert neighbors == expected

    def test_lrs_only_connect_to_grs(self, mlfm4):
        for r in range(mlfm4.num_local_routers):
            assert all(not mlfm4.is_local(n) for n in mlfm4.neighbors(r))

    def test_endpoint_diameter_two(self, mlfm4):
        assert mlfm4.endpoint_diameter() == 2

    def test_endpoint_routers_are_lrs(self, mlfm4):
        assert mlfm4.endpoint_routers() == list(range(mlfm4.num_local_routers))

    def test_same_column_pairs_have_h_common_neighbors(self, mlfm4):
        h = mlfm4.h
        lr_a = 0 * (h + 1) + 2  # layer 0, column 2
        lr_b = 1 * (h + 1) + 2  # layer 1, column 2
        assert len(mlfm4.common_neighbors(lr_a, lr_b)) == h

    def test_cross_column_pairs_have_one_common_neighbor(self, mlfm4):
        h = mlfm4.h
        lr_a = 0 * (h + 1) + 0
        lr_b = 1 * (h + 1) + 3
        assert len(mlfm4.common_neighbors(lr_a, lr_b)) == 1


class TestLinkClasses:
    def test_up_toward_gr(self, mlfm4):
        lr = 0
        gr = mlfm4.neighbors(lr)[0]
        assert mlfm4.link_class(lr, gr) == LINK_UP
        assert mlfm4.link_class(gr, lr) == LINK_DOWN

    def test_valiant_intermediates_are_lrs(self, mlfm4):
        assert mlfm4.valiant_intermediates() == list(range(mlfm4.num_local_routers))
