"""Differential fuzzing across the three simulator backends.

The golden conformance suite pins a fixed case matrix; this harness
closes the gap between those and "any configuration": seeded random
(topology x routing x traffic x fault-schedule x checker) configs run on
the object, batched and kernel backends, asserting an identical ordered
delivery stream (sha256 fingerprint) and identical WindowStats.  A
kernel-without-listener leg compares WindowStats only, which is the one
configuration where the C delivery-accounting fast path is live -- the
listener legs gate the C route-selection path instead.

On a mismatch the harness *shrinks* the failing config (drop faults,
drop the checker, shorter run, lower load -- in that order) and prints
the smallest still-failing variant plus its seed, so a reproduction is
one copy-paste away.

CI runs a bounded number of iterations; set ``REPRO_FUZZ_ITERS=<n>``
for a deeper local run.
"""

from __future__ import annotations

import hashlib
import os
import random

import pytest

from repro.routing import IndirectRandomRouting, MinimalRouting, UGALRouting
from repro.sim import Network, SimConfig
from repro.sim.vec.kernel import load_kernel
from repro.topology import MLFM, OFT, SlimFly
from repro.traffic import ShiftTraffic, Tornado, UniformRandom

ITERS = int(os.environ.get("REPRO_FUZZ_ITERS", "6"))

_TOPOLOGIES = {
    "sf:q=4": lambda: SlimFly(4),
    "sf:q=5": lambda: SlimFly(5),
    "mlfm:h=4": lambda: MLFM(4),
    "oft:k=4": lambda: OFT(4),
}

_ROUTINGS = {
    "min-random": lambda topo, seed, vc: MinimalRouting(
        topo, seed=seed, selection="random", vc_policy=vc),
    "min-best": lambda topo, seed, vc: MinimalRouting(
        topo, seed=seed, selection="best", vc_policy=vc),
    "inr": lambda topo, seed, vc: IndirectRandomRouting(
        topo, seed=seed, vc_policy=vc),
    "ugal": lambda topo, seed, vc: UGALRouting(
        topo, seed=seed, vc_policy=vc),
}

_TRAFFICS = {
    "uniform": lambda n: UniformRandom(n),
    "shift": lambda n: ShiftTraffic(n, shift=max(1, n // 3)),
    "tornado": lambda n: Tornado(n),
}


def _random_config(seed: int) -> dict:
    """One fuzz case: every axis drawn from *seed* (reproducible)."""
    rng = random.Random(seed)
    topo_key = rng.choice(sorted(_TOPOLOGIES))
    cfg = {
        "seed": seed,
        "topology": topo_key,
        "routing": rng.choice(sorted(_ROUTINGS)),
        "traffic": rng.choice(sorted(_TRAFFICS)),
        "load": rng.choice([0.2, 0.4, 0.7]),
        "measure_ns": rng.choice([600.0, 1_000.0]),
        "traffic_seed": rng.randrange(10_000),
        "routing_seed": rng.randrange(10_000),
        "check": rng.random() < 0.3,
        "faults": None,
    }
    if rng.random() < 0.4:
        # A connectivity-preserving fail/recover pair inside the run,
        # built against the topology so the link always exists.
        topo = _TOPOLOGIES[topo_key]()
        v = min(topo.neighbors(0))
        cfg["faults"] = (f"fail@400:0-{v}", f"recover@800:0-{v}")
    return cfg


def _run(cfg: dict, backend: str, listener: bool = True) -> dict:
    from repro.routing.vc import HopIndexVC

    topo = _TOPOLOGIES[cfg["topology"]]()
    # Fault schedules can stretch minimal paths past the diameter-2 VC
    # budget; provision headroom so every fuzzed config is routable.
    vc = HopIndexVC(minimal_vcs=4, indirect_vcs=8) if cfg["faults"] else None
    routing = _ROUTINGS[cfg["routing"]](topo, cfg["routing_seed"], vc)
    net = Network(topo, routing, SimConfig(
        backend=backend,
        check=cfg["check"],
        faults=cfg["faults"] or (),
    ))
    digest = hashlib.sha256()
    if listener:
        net.add_delivery_listener(
            lambda p: digest.update(
                f"{p.pid}:{p.src_node}:{p.dst_node}:{p.kind}:"
                f"{p.eject_time!r};".encode()
            )
        )
    stats = net.run_synthetic(
        _TRAFFICS[cfg["traffic"]](topo.num_nodes),
        load=cfg["load"],
        warmup_ns=300.0,
        measure_ns=cfg["measure_ns"],
        seed=cfg["traffic_seed"],
        drain=True,
    )
    return {
        "digest": digest.hexdigest() if listener else None,
        "delivered": net.stats.ejected_total,
        "stats": {name: getattr(stats, name) for name in stats.__slots__},
    }


def _backends() -> list:
    backends = ["object", "batched"]
    if load_kernel() is not None:
        backends.append("kernel")
    return backends


def _diverges(cfg: dict) -> list:
    """Run *cfg* on every backend; return human-readable mismatches."""
    ref = _run(cfg, "object")
    problems = []
    for backend in _backends()[1:]:
        got = _run(cfg, backend)
        if got["digest"] != ref["digest"]:
            problems.append(
                f"{backend}: delivery stream diverged "
                f"({ref['delivered']} vs {got['delivered']} delivered)"
            )
        for field, want in ref["stats"].items():
            if got["stats"][field] != want:
                problems.append(
                    f"{backend}: stats.{field} {want!r} -> "
                    f"{got['stats'][field]!r}"
                )
    return problems


def _shrink(cfg: dict) -> dict:
    """Smallest still-failing variant of a diverging config."""
    current = dict(cfg)
    for reduction in (
        lambda c: dict(c, faults=None),
        lambda c: dict(c, check=False),
        lambda c: dict(c, measure_ns=600.0),
        lambda c: dict(c, load=0.2),
    ):
        cand = reduction(current)
        if cand != current and _diverges(cand):
            current = cand
    return current


@pytest.mark.parametrize("iteration", range(ITERS))
def test_backends_agree_on_random_config(iteration):
    cfg = _random_config(20_260_800 + iteration)
    problems = _diverges(cfg)
    if problems:
        small = _shrink(cfg)
        pytest.fail(
            "backend divergence on fuzzed config\n"
            f"  config: {cfg}\n"
            f"  shrunk: {small}\n  " + "\n  ".join(_diverges(small) or problems)
        )


@pytest.mark.skipif(load_kernel() is None,
                    reason="compiled kernel unavailable")
@pytest.mark.parametrize("iteration", range(min(ITERS, 4)))
def test_kernel_deliver_fast_matches_object_stats(iteration):
    # No listener, no checker: the only configuration where the C
    # delivery-accounting fast path runs.  WindowStats (including the
    # order-sensitive mean/percentile latency reductions) must match
    # the object engine's per-packet accounting exactly.
    cfg = dict(_random_config(10_987 + iteration), check=False)
    ref = _run(cfg, "object", listener=False)
    got = _run(cfg, "kernel", listener=False)
    assert got["delivered"] == ref["delivered"], cfg
    assert got["stats"] == ref["stats"], (
        f"deliver-fast stats diverged on {cfg}: "
        f"{ref['stats']} != {got['stats']}"
    )


def test_shrinker_reports_minimal_config(monkeypatch):
    # The shrinker itself: given a fake divergence predicate that only
    # needs the fault axis, the reported config has everything else
    # reduced away.
    cfg = _random_config(1)
    cfg.update(check=True, faults=("fail@400:0-1",), load=0.7,
               measure_ns=1_000.0)
    calls = []

    def fake_diverges(c):
        calls.append(c)
        return ["boom"] if c["faults"] else []

    monkeypatch.setattr("tests.test_fuzz_backend_diff._diverges",
                        fake_diverges, raising=False)
    import tests.test_fuzz_backend_diff as mod

    small = mod._shrink(cfg)
    assert small["faults"]  # the culprit axis survives
    assert small["check"] is False and small["load"] == 0.2
