"""Scheduler fault tolerance: crashes, exceptions, timeouts, retries.

Probe jobs (``kind="probe"``) exercise each failure mode from inside a
real worker process: ``raise`` reports an exception, ``exit`` kills the
worker without a result (``os._exit``), ``sleep`` overstays a per-job
timeout.  In every case the campaign must finish, the broken job must
be charged its retries and marked ``failed``, and every healthy job
must complete.
"""

import threading

import pytest

from repro.orchestrate import (
    Job,
    JobResult,
    ProcessPoolScheduler,
    SerialScheduler,
    Telemetry,
    make_scheduler,
    run_campaign,
    run_job,
)


def probe(behavior="ok", seed=0, **params):
    params = {"behavior": behavior, **params}
    return Job(kind="probe", seed=seed, params=params)


class TestRunJob:
    def test_probe_ok(self):
        result = run_job(probe(value=7))
        assert isinstance(result, JobResult)
        assert result.payload == {"value": 7}
        assert result.worker_pid > 0

    def test_probe_raise(self):
        with pytest.raises(RuntimeError, match="asked to raise"):
            run_job(probe("raise"))

    def test_unknown_kind(self):
        with pytest.raises(ValueError, match="unknown job kind"):
            run_job(Job(kind="nope"))


class TestSerialScheduler:
    def test_runs_in_order(self):
        sched = SerialScheduler()
        items = [(f"j{i}", probe(value=i, seed=i)) for i in range(3)]
        outcomes = sched.run(items)
        assert [outcomes[f"j{i}"].result.payload["value"] for i in range(3)] == [0, 1, 2]

    def test_exception_retried_then_failed(self):
        sched = SerialScheduler(max_retries=2)
        outcomes = sched.run([("bad", probe("raise"))])
        assert outcomes["bad"].status == "failed"
        assert outcomes["bad"].attempts == 3
        assert "asked to raise" in outcomes["bad"].error

    def test_failure_does_not_abort_remaining_jobs(self):
        sched = SerialScheduler(max_retries=0)
        outcomes = sched.run([("bad", probe("raise")), ("good", probe(value=1))])
        assert outcomes["bad"].status == "failed"
        assert outcomes["good"].ok


class TestProcessPoolScheduler:
    def test_all_jobs_complete(self):
        sched = ProcessPoolScheduler(num_workers=3, retry_backoff_s=0.01)
        items = [(f"j{i}", probe(value=i, seed=i)) for i in range(8)]
        outcomes = sched.run(items)
        assert len(outcomes) == 8
        assert all(o.ok for o in outcomes.values())
        assert {o.result.payload["value"] for o in outcomes.values()} == set(range(8))

    def test_worker_crash_is_retried_then_failed_without_aborting(self):
        sched = ProcessPoolScheduler(
            num_workers=2, max_retries=1, retry_backoff_s=0.01
        )
        items = [("crash", probe("exit", code=3))] + [
            (f"ok{i}", probe(value=i, seed=i)) for i in range(4)
        ]
        events = []
        outcomes = sched.run(items, on_event=lambda t, **p: events.append(t))
        crash = outcomes["crash"]
        assert crash.status == "failed"
        assert crash.attempts == 2  # first try + one retry, both crash
        assert "crashed" in crash.error
        assert all(outcomes[f"ok{i}"].ok for i in range(4))
        assert events.count("worker_crash") == 2
        assert "job_retry" in events

    def test_exception_in_worker_is_reported_not_fatal(self):
        sched = ProcessPoolScheduler(num_workers=2, max_retries=0)
        outcomes = sched.run(
            [("bad", probe("raise")), ("good", probe(value=2))]
        )
        assert outcomes["bad"].status == "failed"
        assert "asked to raise" in outcomes["bad"].error
        assert outcomes["good"].ok

    def test_timeout_kills_and_fails_the_job(self):
        sched = ProcessPoolScheduler(
            num_workers=2, timeout_s=0.3, max_retries=0, retry_backoff_s=0.01
        )
        outcomes = sched.run(
            [("slow", probe("sleep", seconds=60)), ("fast", probe(value=1))]
        )
        assert outcomes["slow"].status == "failed"
        assert "timed out" in outcomes["slow"].error
        assert outcomes["fast"].ok

    def test_results_attribute_worker_pids(self):
        sched = ProcessPoolScheduler(num_workers=2)
        outcomes = sched.run([(f"j{i}", probe(value=i, seed=i)) for i in range(4)])
        pids = {o.result.worker_pid for o in outcomes.values()}
        assert all(pid > 0 for pid in pids)

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ValueError):
            ProcessPoolScheduler(num_workers=0)


class TestCooperativeStop:
    """``stop_event`` drain contract: stop *dispatching*, finish what is
    in flight, leave never-dispatched jobs out of the outcome map."""

    def test_serial_preset_stop_runs_nothing(self):
        stop = threading.Event()
        stop.set()
        events = []
        sched = SerialScheduler()
        outcomes = sched.run(
            [(f"j{i}", probe(value=i, seed=i)) for i in range(3)],
            on_event=lambda t, **p: events.append((t, p)),
            stop_event=stop,
        )
        assert outcomes == {}
        assert events == [("drain", {"remaining": 3})]

    def test_serial_stop_mid_run_keeps_finished_work(self):
        stop = threading.Event()
        events = []

        def on_event(event_type, **payload):
            events.append(event_type)
            if event_type == "job_done":
                stop.set()

        sched = SerialScheduler()
        outcomes = sched.run(
            [(f"j{i}", probe(value=i, seed=i)) for i in range(3)],
            on_event=on_event,
            stop_event=stop,
        )
        assert list(outcomes) == ["j0"]
        assert outcomes["j0"].ok
        assert "drain" in events

    def test_pool_preset_stop_runs_nothing(self):
        stop = threading.Event()
        stop.set()
        sched = ProcessPoolScheduler(num_workers=2, retry_backoff_s=0.01)
        outcomes = sched.run(
            [(f"j{i}", probe(value=i, seed=i)) for i in range(3)],
            stop_event=stop,
        )
        assert outcomes == {}

    def test_pool_stop_mid_run_finishes_in_flight_only(self):
        stop = threading.Event()
        events = []

        def on_event(event_type, **payload):
            events.append((event_type, payload))
            if event_type == "job_done":
                stop.set()

        sched = ProcessPoolScheduler(num_workers=1, retry_backoff_s=0.01)
        outcomes = sched.run(
            [(f"j{i}", probe(value=i, seed=i, seconds=0.05)) for i in range(3)],
            on_event=on_event,
            stop_event=stop,
        )
        # One worker: exactly the first job completed, the rest were
        # never dispatched and are absent (not "failed").
        assert len(outcomes) == 1
        assert all(o.ok for o in outcomes.values())
        drains = [p for t, p in events if t == "drain"]
        assert drains and drains[0]["remaining"] == 2

    def test_no_stop_event_is_unchanged(self):
        sched = SerialScheduler()
        outcomes = sched.run([("j0", probe(value=1))], stop_event=None)
        assert outcomes["j0"].ok


class TestMakeScheduler:
    def test_dispatch(self):
        assert isinstance(make_scheduler(1), SerialScheduler)
        assert isinstance(make_scheduler(4), ProcessPoolScheduler)


class TestCampaignDegradation:
    def test_failed_job_recorded_not_fatal(self, tmp_path):
        jobs = [probe(value=1, seed=1), probe("raise"), probe(value=2, seed=2)]
        result = run_campaign(
            jobs, scheduler=make_scheduler(2, max_retries=1, retry_backoff_s=0.01)
        )
        outcomes = result.outcome_list()
        assert [o.status for o in outcomes] == ["done", "failed", "done"]
        with pytest.raises(RuntimeError, match="1 of 3 campaign jobs failed"):
            result.raise_on_failure()

    def test_failed_jobs_are_not_cached(self, tmp_path):
        from repro.orchestrate import Orchestrator

        orch = Orchestrator(
            jobs=2, cache_dir=tmp_path, resume=True, max_retries=0,
            retry_backoff_s=0.01,
        )
        first = orch.run([probe("raise"), probe(value=3, seed=3)])
        assert [o.status for o in first.outcome_list()] == ["failed", "done"]
        # Re-run: the failure is retried (cache has no poison entry), the
        # success comes back from cache.
        second = Orchestrator(jobs=2, cache_dir=tmp_path, resume=True,
                              max_retries=0).run([probe("raise"), probe(value=3, seed=3)])
        assert second.stats["cache_hits"] == 1
        assert second.stats["executed"] == 1

    def test_telemetry_counters(self):
        tele = Telemetry(live=False)
        jobs = [probe(value=i, seed=i) for i in range(3)] + [probe("raise")]
        run_campaign(
            jobs,
            scheduler=make_scheduler(2, max_retries=1, retry_backoff_s=0.01),
            telemetry=tele,
        )
        summary = tele.summary()
        assert summary["jobs"]["done"] == 3
        assert summary["jobs"]["failed"] == 1
        assert summary["jobs"]["retries"] == 1
        assert summary["jobs"]["total"] == 4
        assert summary["wall_clock_s"] > 0

    def test_telemetry_flushes_each_line_by_default(self, tmp_path):
        # The service tails these files live; a buffered line would be
        # invisible to a streaming client until the run ended.
        path = tmp_path / "events.jsonl"
        tele = Telemetry(jsonl_path=path, live=False)
        try:
            tele.emit("job_start", job_id="j0")
            assert path.read_text().count("\n") == 1
            tele.emit("job_done", job_id="j0")
            assert path.read_text().count("\n") == 2
        finally:
            tele.close()

    def test_telemetry_flush_every_defers_writes(self, tmp_path):
        path = tmp_path / "events.jsonl"
        tele = Telemetry(jsonl_path=path, live=False, flush_every=1000)
        try:
            tele.emit("job_start", job_id="j0")
            buffered = path.read_text().count("\n")
            assert buffered == 0  # still in the userspace buffer
        finally:
            tele.close()
        assert path.read_text().count("\n") == 1  # close() flushes

    def test_telemetry_jsonl_stream(self, tmp_path):
        import json

        path = tmp_path / "events.jsonl"
        with Telemetry(jsonl_path=path, live=False) as tele:
            run_campaign([probe(value=1, seed=1)],
                         scheduler=SerialScheduler(), telemetry=tele)
        events = [json.loads(line) for line in path.read_text().splitlines()]
        types = [e["type"] for e in events]
        assert types[0] == "campaign_start"
        assert "job_start" in types and "job_done" in types
        assert types[-1] == "campaign_end"
        assert all("ts" in e for e in events)
