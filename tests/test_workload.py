"""Tests for the collective-communication workload engine (repro.workload)."""

import pytest

from repro.cli import parse_topology
from repro.routing import MinimalRouting, UGALRouting
from repro.sim import Network
from repro.sim.config import SimConfig
from repro.traffic import AllToAll, NearestNeighbor3D
from repro.workload import (
    Workload,
    WorkloadDriver,
    build_workload,
    halo_exchange_3d,
    largest_power_of_two,
    phased_alltoall,
    recursive_doubling_allreduce,
    ring_allgather,
    ring_allreduce,
)


# --------------------------------------------------------------------------
# DAG structure.
# --------------------------------------------------------------------------


class TestWorkloadDag:
    def test_add_and_iterate(self):
        w = Workload("t")
        a = w.add(0, 1, 100)
        b = w.add(1, 2, 200, deps=[a])
        assert len(w) == 2
        assert [m.mid for m in w] == [a, b]
        assert w.total_bytes == 300
        assert w.endpoints() == (0, 1, 2)

    def test_unknown_dependency_rejected(self):
        w = Workload()
        with pytest.raises(ValueError, match="unknown dependency"):
            w.add(0, 1, 10, deps=[7])

    def test_bad_size_and_endpoints_rejected(self):
        w = Workload()
        with pytest.raises(ValueError):
            w.add(0, 1, -1)
        with pytest.raises(ValueError):
            w.add(-2, 1, 10)

    def test_validate_checks_node_range(self):
        w = Workload()
        w.add(0, 5, 10)
        with pytest.raises(ValueError, match="exceed node count"):
            w.validate(num_nodes=4)

    def test_cycle_detected(self):
        # add() cannot create a forward reference, so splice a cycle in
        # behind the API to prove topological_order catches it.
        from repro.workload.dag import Message

        w = Workload("cyclic")
        a = w.add(0, 1, 10)
        b = w.add(1, 2, 10, deps=[a])
        w.messages[a] = Message(a, 0, 1, 10, deps=(b,))
        with pytest.raises(ValueError, match="cycle"):
            w.topological_order()

    def test_critical_path_linear_chain(self):
        w = Workload()
        a = w.add(0, 1, 100)
        b = w.add(1, 2, 300, deps=[a])
        c = w.add(2, 3, 50, deps=[b])
        w.add(3, 0, 10)  # independent side message
        cp = w.critical_path()
        assert cp.length == 3
        assert cp.bytes == 450
        assert cp.messages == [a, b, c]

    def test_critical_path_prefers_heavier_branch(self):
        w = Workload()
        root = w.add(0, 1, 10)
        w.add(1, 2, 10, deps=[root])
        heavy = w.add(1, 3, 1000, deps=[root])
        cp = w.critical_path()
        assert cp.messages[-1] == heavy
        assert cp.bytes == 1010

    def test_local_messages_count_in_length_not_bytes(self):
        w = Workload()
        a = w.add(0, 0, 0)  # control-only
        b = w.add(0, 1, 100, deps=[a])
        cp = w.critical_path()
        assert cp.length == 2
        assert cp.bytes == 100

    def test_ideal_ns_lower_bound_formula(self):
        cfg = SimConfig()
        w = Workload()
        a = w.add(0, 1, cfg.packet_bytes * 2)
        w.add(1, 2, cfg.packet_bytes, deps=[a])
        cp = w.critical_path()
        per_msg = cfg.switch_latency_ns + 2 * cfg.link_latency_ns
        expected = 2 * per_msg + 3 * cfg.packet_time_ns
        assert cp.ideal_ns(cfg) == pytest.approx(expected)

    def test_remap(self):
        w = Workload()
        a = w.add(0, 1, 64)
        w.add(1, 0, 64, deps=[a])
        m = w.remap([10, 20])
        msgs = list(m)
        assert (msgs[0].src, msgs[0].dst) == (10, 20)
        assert (msgs[1].src, msgs[1].dst) == (20, 10)
        assert msgs[1].deps == (a,)

    def test_phases_in_first_appearance_order(self):
        w = Workload()
        w.add(0, 1, 1, phase="x")
        w.add(1, 2, 1, phase="y")
        w.add(2, 3, 1, phase="x")
        assert w.phases == ["x", "y"]


# --------------------------------------------------------------------------
# Schedule generators.
# --------------------------------------------------------------------------


class TestGenerators:
    def test_ring_allreduce_shape(self):
        r, b = 8, 8000
        w = ring_allreduce(r, b)
        assert w.num_messages == 2 * (r - 1) * r
        assert w.phases == ["reduce-scatter", "all-gather"]
        # Bandwidth-optimal volume: each rank moves 2(R-1) chunks.
        chunk = -(-b // r)
        assert w.total_bytes == 2 * (r - 1) * r * chunk
        # Critical path follows one chunk around the ring twice.
        assert w.critical_path().length == 2 * (r - 1)

    def test_ring_allreduce_dependency_is_previous_step_upstream(self):
        w = ring_allreduce(4, 400)
        msgs = {m.mid: m for m in w}
        # Step 0 sends have no deps; step 1 send of rank i depends on the
        # step 0 send of rank i-1 (the chunk that just arrived).
        step0 = [m for m in w if not m.deps]
        assert len(step0) == 4
        step1 = [m for m in w if m.deps and msgs[m.deps[0]].mid in
                 {s.mid for s in step0}]
        for m in step1:
            dep = msgs[m.deps[0]]
            assert dep.dst == m.src

    def test_recursive_doubling_shape(self):
        r, b = 16, 1024
        w = recursive_doubling_allreduce(r, b)
        assert w.num_messages == r * 4  # log2(16) rounds of R sends
        assert w.critical_path().length == 4  # one message per round
        # Every round pairs i with i ^ 2^round.
        for m in w:
            rnd = int(m.phase[len("round"):])
            assert m.dst == m.src ^ (1 << rnd)

    def test_recursive_doubling_rejects_non_power_of_two(self):
        with pytest.raises(ValueError, match="power-of-two"):
            recursive_doubling_allreduce(12, 64)

    def test_largest_power_of_two(self):
        assert largest_power_of_two(1) == 1
        assert largest_power_of_two(12) == 8
        assert largest_power_of_two(16) == 16
        with pytest.raises(ValueError):
            largest_power_of_two(0)

    def test_ring_allgather_shape(self):
        r, b = 6, 512
        w = ring_allgather(r, b)
        assert w.num_messages == (r - 1) * r
        assert w.total_bytes == (r - 1) * r * b
        assert w.critical_path().length == r - 1

    def test_halo_matches_nearest_neighbor_geometry(self):
        dims = (3, 3, 2)
        w = halo_exchange_3d(18, 1024, dims=dims)
        nn = NearestNeighbor3D(18, message_bytes=1024, dims=dims)
        got = {}
        for m in w:
            got.setdefault(m.src, set()).add(m.dst)
        for rank in range(18):
            assert got.get(rank, set()) == {d for d, _ in nn.node_messages(rank)}

    def test_halo_iterations_gate_on_all_inbound(self):
        w = halo_exchange_3d(8, 64, iterations=2, dims=(2, 2, 2))
        msgs = {m.mid: m for m in w}
        second = [m for m in w if m.phase == "iter1"]
        assert second
        for m in second:
            # Every dependency is an iter0 send addressed to this sender.
            assert m.deps
            for d in m.deps:
                assert msgs[d].phase == "iter0"
                assert msgs[d].dst == m.src

    def test_phased_alltoall_phases_hit_each_destination_once(self):
        r = 7
        w = phased_alltoall(r, 128)
        assert w.num_messages == (r - 1) * r
        for ph in range(1, r):
            dsts = [m.dst for m in w if m.phase == f"phase{ph}"]
            assert sorted(dsts) == list(range(r))  # a permutation

    def test_phased_alltoall_barrier_deepens_critical_path(self):
        free = phased_alltoall(6, 128)
        barrier = phased_alltoall(6, 128, barrier=True)
        assert free.critical_path().length == 5
        assert barrier.critical_path().length == 5
        # Barrier mode: every phase-ph message depends on all of ph-1.
        last = [m for m in barrier if m.phase == "phase5"]
        assert all(len(m.deps) == 6 for m in last)

    def test_build_workload_registry(self):
        w = build_workload("ring-allreduce", 50, 4096, ranks=8)
        assert w.num_messages == 2 * 7 * 8
        with pytest.raises(ValueError, match="unknown workload"):
            build_workload("nope", 50, 4096)
        with pytest.raises(ValueError, match="exceeds node count"):
            build_workload("allgather", 10, 64, ranks=20)

    def test_build_workload_trims_rd_to_power_of_two(self):
        w = build_workload("rd-allreduce", 50, 1024)
        assert max(m.src for m in w) == 31  # 32 of 50 ranks participate


# --------------------------------------------------------------------------
# Closed-loop driver.
# --------------------------------------------------------------------------


TOPOLOGIES = ["sf:q=5", "mlfm:h=5", "oft:k=4"]


def _ugal(topo, seed):
    from repro.topology import SlimFly

    if isinstance(topo, SlimFly):
        return UGALRouting(topo, cost_mode="sf", c_sf=1.0, num_indirect=4, seed=seed)
    return UGALRouting(topo, c=2.0, num_indirect=4, seed=seed)


class TestDriver:
    @pytest.mark.parametrize("spec", TOPOLOGIES)
    @pytest.mark.parametrize("routing", ["min", "ugal"])
    def test_allreduce_completes_on_all_topologies(self, spec, routing):
        topo = parse_topology(spec)
        make = (lambda s: MinimalRouting(topo, seed=s)) if routing == "min" \
            else (lambda s: _ugal(topo, s))
        for w in (ring_allreduce(16, 4096), recursive_doubling_allreduce(16, 4096)):
            net = Network(topo, make(1))
            res = net.run_workload(w)
            assert res["completion_ns"] > 0
            assert res["messages"] == w.num_messages
            # Every non-local packet delivered.
            pkt = net.config.packet_bytes
            expected = sum(-(-m.size // pkt) for m in w if not m.is_local)
            assert res["packets"] == expected
            assert res["contention_stretch"] >= 1.0
            assert res["link_load_skew"] >= 1.0

    @pytest.mark.parametrize("spec", TOPOLOGIES)
    def test_completion_times_are_seed_stable(self, spec):
        """Identical seeds => bit-identical completion (regression)."""
        topo_a, topo_b = parse_topology(spec), parse_topology(spec)
        w = ring_allreduce(16, 8192)
        r1 = Network(topo_a, _ugal(topo_a, 3)).run_workload(ring_allreduce(16, 8192))
        r2 = Network(topo_b, _ugal(topo_b, 3)).run_workload(ring_allreduce(16, 8192))
        assert r1["completion_ns"] == r2["completion_ns"]
        assert r1["packets"] == r2["packets"]
        assert r1["phases"] == r2["phases"]
        del w

    def test_dependencies_gate_release(self, sf5):
        """A chain's completion grows linearly: closed-loop, not open-loop."""
        single = Workload("one")
        single.add(0, 1, 256)
        chain = Workload("chain")
        prev = None
        for i in range(5):
            prev = chain.add(i % 2, (i + 1) % 2, 256,
                             deps=[prev] if prev is not None else [])
        t1 = Network(sf5, MinimalRouting(sf5, seed=1)).run_workload(single)
        t5 = Network(sf5, MinimalRouting(sf5, seed=1)).run_workload(chain)
        # Five strictly serialized messages take ~5x one message's time.
        assert t5["completion_ns"] == pytest.approx(5 * t1["completion_ns"], rel=0.01)

    def test_local_messages_complete_and_release(self, sf5):
        w = Workload("ctl")
        gate = w.add(0, 0, 0)  # pure control node
        w.add(0, 1, 512, deps=[gate])
        res = Network(sf5, MinimalRouting(sf5, seed=1)).run_workload(w)
        assert res["messages"] == 2
        assert res["packets"] == 2  # 512 B = 2 packets; control moved none

    def test_incomplete_run_raises(self, sf5):
        net = Network(sf5, MinimalRouting(sf5, seed=1))
        with pytest.raises(RuntimeError, match="incomplete"):
            net.run_workload(ring_allreduce(16, 4096), max_events=10)

    def test_network_reuse_rejected(self, sf5):
        net = Network(sf5, MinimalRouting(sf5, seed=1))
        net.run_workload(ring_allgather(8, 256))
        with pytest.raises(RuntimeError, match="already ran"):
            net.run_workload(ring_allgather(8, 256))

    def test_per_phase_kind_counts_cover_all_packets(self, sf5):
        net = Network(sf5, _ugal(sf5, 2))
        res = net.run_workload(phased_alltoall(24, 512))
        counted = sum(
            c for ph in res["phases"].values() for c in ph["kind_counts"].values()
        )
        assert counted == res["packets"]

    def test_driver_validates_against_topology(self, sf5):
        w = Workload("too-big")
        w.add(0, sf5.num_nodes + 5, 256)
        with pytest.raises(ValueError, match="exceed node count"):
            WorkloadDriver(Network(sf5, MinimalRouting(sf5, seed=1)), w)

    def test_delivery_listener_rejects_non_callable(self, sf5):
        net = Network(sf5, MinimalRouting(sf5, seed=1))
        with pytest.raises(TypeError):
            net.add_delivery_listener(42)


class TestPhasedAllToAllOrdering:
    def test_ordering_consistent_with_steady_state_exchange(self):
        """Acceptance: phased A2A completion reproduces the paper's
        steady-state all-to-all ordering of SF / MLFM / OFT (ties at
        10%, the reproduction tolerance)."""
        workload_eff = {}
        exchange_eff = {}
        for spec in TOPOLOGIES:
            topo = parse_topology(spec)
            net = Network(topo, MinimalRouting(topo, seed=1))
            res = net.run_workload(phased_alltoall(topo.num_nodes, 256))
            workload_eff[spec] = res["effective_throughput"]
            ex = AllToAll(topo.num_nodes, message_bytes=256, seed=0)
            net2 = Network(topo, MinimalRouting(topo, seed=1))
            exchange_eff[spec] = net2.run_exchange(ex)["effective_throughput"]

        def order(scores, tol=0.10):
            """Pairs (a strictly better than b) outside the tolerance."""
            out = set()
            for a in scores:
                for b in scores:
                    if scores[a] > scores[b] * (1 + tol):
                        out.add((a, b))
            return out

        strict_workload = order(workload_eff)
        strict_exchange = order(exchange_eff)
        # No inversion: whenever the steady-state exchange separates two
        # topologies decisively, the closed-loop schedule must not rank
        # them the other way (and vice versa).
        for a, b in strict_exchange:
            assert (b, a) not in strict_workload, (
                f"{b} beat {a} closed-loop but loses steady-state: "
                f"workload={workload_eff}, exchange={exchange_eff}"
            )
        for a, b in strict_workload:
            assert (b, a) not in strict_exchange
