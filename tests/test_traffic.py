"""Tests for traffic patterns (Sec. 4.2-4.4 workloads)."""

import random

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.traffic import (
    AllToAll,
    NearestNeighbor3D,
    PermutationTraffic,
    ShiftTraffic,
    UniformRandom,
    best_torus_dims,
    paper_torus_dims,
    shift_permutation,
    torus_coords,
    torus_rank,
)


class TestUniform:
    def test_never_self(self):
        u = UniformRandom(10)
        rng = random.Random(0)
        for _ in range(500):
            src = rng.randrange(10)
            assert u.pick_destination(src, rng) != src

    def test_covers_all_destinations(self):
        u = UniformRandom(6)
        rng = random.Random(1)
        seen = {u.pick_destination(0, rng) for _ in range(300)}
        assert seen == {1, 2, 3, 4, 5}

    def test_roughly_uniform(self):
        u = UniformRandom(5)
        rng = random.Random(2)
        counts = np.zeros(5)
        for _ in range(5000):
            counts[u.pick_destination(0, rng)] += 1
        assert counts[0] == 0
        assert counts[1:].min() > 1000  # expected 1250 each

    def test_rejects_tiny(self):
        with pytest.raises(ValueError):
            UniformRandom(1)


class TestShift:
    def test_shift_values(self):
        s = ShiftTraffic(10, 3)
        assert s.pick_destination(0, None) == 3
        assert s.pick_destination(9, None) == 2

    def test_rejects_zero_shift(self):
        with pytest.raises(ValueError):
            ShiftTraffic(10, 0)
        with pytest.raises(ValueError):
            shift_permutation(10, 10)

    def test_permutation_property(self):
        dst = shift_permutation(17, 5)
        assert sorted(dst) == list(range(17))


class TestPermutation:
    def test_rejects_self_destination(self):
        with pytest.raises(ValueError):
            PermutationTraffic([1, 1])
        with pytest.raises(ValueError):
            PermutationTraffic([0, 1])  # 0 -> 0

    def test_rejects_duplicates(self):
        with pytest.raises(ValueError):
            PermutationTraffic([2, 2, 1])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            PermutationTraffic([5, 0])

    def test_partial_permutation(self):
        p = PermutationTraffic([2, -1, 0])
        assert p.pick_destination(0, None) == 2
        assert p.pick_destination(1, None) is None

    def test_as_messages(self):
        p = PermutationTraffic([1, 0, -1])
        msgs = p.as_messages(100)
        assert msgs == [[(1, 100)], [(0, 100)], []]


class TestAllToAll:
    def test_every_pair_exactly_once(self):
        a2a = AllToAll(7, message_bytes=10, schedule="random", seed=3)
        pairs = set()
        for node in range(7):
            for dst, size in a2a.node_messages(node):
                assert size == 10 and dst != node
                pairs.add((node, dst))
        assert len(pairs) == 42

    def test_staggered_order(self):
        a2a = AllToAll(5, message_bytes=10, schedule="staggered")
        assert [d for d, _ in a2a.node_messages(0)] == [1, 2, 3, 4]
        assert [d for d, _ in a2a.node_messages(3)] == [4, 0, 1, 2]

    def test_random_is_seeded(self):
        a = list(AllToAll(9, schedule="random", seed=5).node_messages(2))
        b = list(AllToAll(9, schedule="random", seed=5).node_messages(2))
        assert a == b

    def test_total_bytes(self):
        a2a = AllToAll(6, message_bytes=100)
        assert a2a.total_bytes == 6 * 5 * 100

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            AllToAll(1)
        with pytest.raises(ValueError):
            AllToAll(5, message_bytes=0)
        with pytest.raises(ValueError):
            AllToAll(5, schedule="barriered")


class TestTorusGeometry:
    def test_rank_coords_roundtrip(self):
        dims = (3, 4, 5)
        for rank in range(60):
            assert torus_rank(torus_coords(rank, dims), dims) == rank

    def test_x_fastest(self):
        assert torus_rank((1, 0, 0), (3, 4, 5)) == 1
        assert torus_rank((0, 1, 0), (3, 4, 5)) == 3
        assert torus_rank((0, 0, 1), (3, 4, 5)) == 12

    def test_out_of_range(self):
        with pytest.raises(ValueError):
            torus_rank((3, 0, 0), (3, 4, 5))
        with pytest.raises(ValueError):
            torus_coords(60, (3, 4, 5))

    def test_best_dims_exact_products(self):
        # The paper's tori are exact fits for the paper's N values.
        assert np.prod(best_torus_dims(3192)) == 3192  # OFT k=12
        assert np.prod(best_torus_dims(3600)) == 3600  # MLFM h=15

    def test_best_dims_near_cubic(self):
        a, b, c = best_torus_dims(1000)
        assert (a, b, c) == (10, 10, 10)

    def test_best_dims_rejects_tiny(self):
        with pytest.raises(ValueError):
            best_torus_dims(4)

    def test_paper_dims_mlfm(self):
        from repro.topology import MLFM

        assert paper_torus_dims(MLFM(15)) == (15, 16, 15)  # the paper's torus
        assert paper_torus_dims(MLFM(5)) == (5, 6, 5)

    def test_paper_dims_sf(self):
        from repro.topology import SlimFly

        assert paper_torus_dims(SlimFly(13, "floor")) == (13, 13, 18)
        assert paper_torus_dims(SlimFly(13, "ceil")) == (13, 13, 20)


class TestNearestNeighbor:
    def test_six_neighbors(self):
        nn = NearestNeighbor3D(64, message_bytes=10, dims=(4, 4, 4))
        msgs = list(nn.node_messages(0))
        assert len(msgs) == 6
        assert all(size == 10 for _, size in msgs)

    def test_neighbor_symmetry(self):
        nn = NearestNeighbor3D(60, message_bytes=10, dims=(3, 4, 5))
        # If a sends to b, then b sends to a (torus symmetry).
        send_map = {n: {d for d, _ in nn.node_messages(n)} for n in range(60)}
        for a, dsts in send_map.items():
            for b in dsts:
                assert a in send_map[b]

    def test_off_torus_nodes_idle(self):
        nn = NearestNeighbor3D(70, message_bytes=10, dims=(3, 4, 5))
        assert list(nn.node_messages(65)) == []

    def test_degenerate_dims_deduplicated(self):
        nn = NearestNeighbor3D(8, message_bytes=10, dims=(2, 2, 2))
        for node in range(8):
            msgs = [d for d, _ in nn.node_messages(node)]
            assert len(msgs) == len(set(msgs))
            assert node not in msgs

    def test_total_bytes(self):
        nn = NearestNeighbor3D(27, message_bytes=10, dims=(3, 3, 3))
        assert nn.total_bytes == 27 * 6 * 10

    def test_rejects_oversized_torus(self):
        with pytest.raises(ValueError):
            NearestNeighbor3D(10, dims=(3, 4, 5))

    def test_interleave_flag(self):
        assert NearestNeighbor3D(64, dims=(4, 4, 4)).interleave


@given(st.integers(min_value=8, max_value=4000))
@settings(max_examples=60, deadline=None)
def test_property_best_torus_fits(n):
    a, b, c = best_torus_dims(n)
    assert a * b * c <= n
    assert a <= b <= c
