"""Tests for packet tracing and the command-line interface."""

import pytest

from repro.cli import main, parse_topology
from repro.routing import MinimalRouting
from repro.sim import Network
from repro.sim.trace import PacketTracer
from repro.topology import MLFM, OFT, SSPT, SlimFly
from repro.traffic import UniformRandom


class TestTracer:
    def test_records_delivered_packets(self, sf5):
        net = Network(sf5, MinimalRouting(sf5, seed=1))
        tracer = net.enable_trace(capacity=100)
        net.run_synthetic(
            UniformRandom(sf5.num_nodes), load=0.2,
            warmup_ns=200, measure_ns=800, seed=3, drain=True,
        )
        assert tracer.records
        rec = tracer.records[0]
        assert rec.latency_ns > 0
        assert rec.queueing_ns >= 0
        assert rec.num_hops == len(rec.routers) - 1

    def test_capacity_bound(self, sf5):
        net = Network(sf5, MinimalRouting(sf5, seed=1))
        tracer = net.enable_trace(capacity=5)
        net.run_synthetic(
            UniformRandom(sf5.num_nodes), load=0.3,
            warmup_ns=200, measure_ns=800, seed=3, drain=True,
        )
        assert len(tracer.records) == 5
        assert tracer.dropped > 0

    def test_start_filter(self, sf5):
        net = Network(sf5, MinimalRouting(sf5, seed=1))
        tracer = net.enable_trace(capacity=1000, start_ns=500.0)
        net.run_synthetic(
            UniformRandom(sf5.num_nodes), load=0.2,
            warmup_ns=200, measure_ns=600, seed=3, drain=True,
        )
        assert all(r.eject_time >= 500.0 for r in tracer.records)

    def test_by_kind(self, sf5):
        net = Network(sf5, MinimalRouting(sf5, seed=1))
        tracer = net.enable_trace()
        net.run_synthetic(
            UniformRandom(sf5.num_nodes), load=0.2,
            warmup_ns=200, measure_ns=600, seed=3, drain=True,
        )
        assert set(tracer.by_kind()) == {"minimal"}

    def test_latencies_list(self):
        tracer = PacketTracer(capacity=3)
        assert tracer.latencies() == []

    def test_rejects_bad_capacity(self):
        with pytest.raises(ValueError):
            PacketTracer(capacity=0)


class TestTopologySpecs:
    def test_sf(self):
        topo = parse_topology("sf:q=5")
        assert isinstance(topo, SlimFly) and topo.q == 5 and topo.p == 3

    def test_sf_ceil_and_int(self):
        assert parse_topology("sf:q=5,p=ceil").p == 4
        assert parse_topology("sf:q=5,p=2").p == 2

    def test_mlfm(self):
        topo = parse_topology("mlfm:h=4")
        assert isinstance(topo, MLFM) and topo.h == 4

    def test_mlfm_general(self):
        topo = parse_topology("mlfm:h=4,l=2,p=3")
        assert topo.l == 2 and topo.p == 3

    def test_oft(self):
        topo = parse_topology("oft:k=4")
        assert isinstance(topo, OFT) and topo.k == 4

    def test_sspt(self):
        topo = parse_topology("sspt:r1=4,r2=2")
        assert isinstance(topo, SSPT)

    def test_hyperx_balanced_and_explicit(self):
        assert parse_topology("hyperx:r=9").num_routers == 16
        assert parse_topology("hyperx:s1=3,s2=4,p=2").num_routers == 12

    def test_fattrees_dragonfly(self):
        assert parse_topology("ft2:r=8").num_nodes == 32
        assert parse_topology("ft3:r=4").num_nodes == 16
        assert parse_topology("dfly:p=2").num_nodes == 72

    def test_bad_specs(self):
        with pytest.raises(ValueError):
            parse_topology("torus:d=3")
        with pytest.raises(ValueError):
            parse_topology("sf:p=3")  # missing q
        with pytest.raises(ValueError):
            parse_topology("sf:q")  # not key=value


class TestCLICommands:
    def test_info(self, capsys):
        assert main(["info", "mlfm:h=4"]) == 0
        out = capsys.readouterr().out
        assert "MLFM(h=4)" in out and "endpoint diameter" in out

    def test_info_no_diameter(self, capsys):
        assert main(["info", "sf:q=5", "--no-diameter"]) == 0
        assert "endpoint diameter" not in capsys.readouterr().out

    def test_simulate(self, capsys):
        rc = main([
            "simulate", "mlfm:h=4", "--routing", "min", "--pattern", "uniform",
            "--load", "0.3", "--warmup", "300", "--measure", "1200",
        ])
        assert rc == 0
        assert "throughput=" in capsys.readouterr().out

    def test_sweep(self, capsys):
        rc = main([
            "sweep", "oft:k=4", "--routing", "min", "--pattern", "worstcase",
            "--loads", "0.1,0.3", "--warmup", "300", "--measure", "1200",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "saturation point" in out

    def test_exchange(self, capsys):
        rc = main([
            "exchange", "oft:k=4", "--pattern", "a2a", "--routing", "min",
            "--msg-bytes", "256",
        ])
        assert rc == 0
        assert "effective_throughput=" in capsys.readouterr().out

    def test_figure_table2(self, capsys):
        assert main(["figure", "table2"]) == 0
        assert "4-ML3B" in capsys.readouterr().out

    def test_figure_unknown(self, capsys):
        assert main(["figure", "fig99"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_scalability(self, capsys):
        assert main(["scalability", "--max-radix", "16"]) == 0
        assert "OFT" in capsys.readouterr().out

    def test_bisection(self, capsys):
        assert main(["bisection", "oft:k=3", "--restarts", "4"]) == 0
        assert "bisection=" in capsys.readouterr().out

    def test_bad_topology_exit_code(self, capsys):
        assert main(["info", "nonsense:x=1"]) == 2

    def test_ugal_routing_names(self, capsys):
        rc = main([
            "simulate", "sf:q=4", "--routing", "ugal-ath", "--pattern", "uniform",
            "--load", "0.2", "--warmup", "200", "--measure", "800",
        ])
        assert rc == 0


class TestValidateCommand:
    def test_healthy_topology(self, capsys):
        assert main(["validate", "mlfm:h=3"]) == 0
        out = capsys.readouterr().out
        assert "HEALTHY" in out
        assert "deadlock (indirect" in out

    def test_skip_indirect(self, capsys):
        assert main(["validate", "sf:q=4", "--skip-indirect"]) == 0
        out = capsys.readouterr().out
        assert "indirect" not in out


class TestReproduceCommand:
    def test_analytic_subset(self, capsys, tmp_path):
        out_md = tmp_path / "summary.md"
        out_json = tmp_path / "data.json"
        rc = main([
            "reproduce", "--only", "table2,fig3",
            "--output", str(out_md), "--json", str(out_json),
        ])
        assert rc == 0
        assert out_md.exists() and out_json.exists()
        assert "table2" in out_md.read_text()


class TestSimulateTraceOutput:
    ARGS = [
        "simulate", "sf:q=4", "--routing", "min", "--pattern", "uniform",
        "--load", "0.3", "--warmup", "200", "--measure", "800",
    ]

    def test_trace_summary_printed(self, capsys):
        rc = main(self.ARGS + ["--trace", "100000"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "packets recorded" in captured.out
        # Roomy capacity: nothing dropped, so no truncation warning.
        assert "warning: trace capacity" not in captured.err

    def test_truncation_warned_not_silent(self, capsys):
        """A too-small --trace must say how many packets it lost."""
        rc = main(self.ARGS + ["--trace", "5"])
        assert rc == 0
        captured = capsys.readouterr()
        assert "trace: 5 packets recorded" in captured.out
        assert "warning: trace capacity 5 exhausted" in captured.err
        assert "raise --trace" in captured.err

    def test_no_trace_no_summary(self, capsys):
        rc = main(self.ARGS)
        assert rc == 0
        captured = capsys.readouterr()
        assert "packets recorded" not in captured.out


class TestKernelProfileOutput:
    needs_kernel = pytest.mark.skipif(
        __import__("repro.sim.vec.kernel", fromlist=["load_kernel"])
        .load_kernel() is None,
        reason="compiled kernel unavailable",
    )

    @needs_kernel
    def test_profile_reports_fast_path_and_escape_rows(self, capsys):
        rc = main([
            "simulate", "sf:q=4", "--routing", "ugal", "--pattern", "uniform",
            "--load", "0.3", "--warmup", "200", "--measure", "800",
            "--backend", "kernel", "--profile",
        ])
        assert rc == 0
        err = capsys.readouterr().err
        assert "kernel escape split" in err
        # Per-packet work stays in C and the table says so explicitly.
        assert "fast-path make_packet" in err
        assert "fast-path deliver" in err
        # Cold paths (the scheduled reset CALL) still show as escapes.
        assert "escape call:" in err

    @needs_kernel
    def test_profile_zero_escape_run_is_wellformed(self, capsys):
        # Regression: a kernel that never ran (run_ns == 0, no escapes)
        # used to print an empty table; the percent math must not
        # divide by zero and the empty escape set must be explicit.
        from repro.cli import _print_kernel_profile
        from repro.routing import UGALRouting
        from repro.sim import SimConfig

        topo = SlimFly(4)
        net = Network(topo, UGALRouting(topo, seed=0),
                      SimConfig(backend="kernel"))
        _print_kernel_profile(net)
        err = capsys.readouterr().err
        assert "in-kernel: 0 events" in err
        assert "escapes: none" in err
        assert "nan" not in err and "inf" not in err

    def test_profile_silent_on_python_backends(self, capsys):
        from repro.cli import _print_kernel_profile

        topo = SlimFly(4)
        net = Network(topo, MinimalRouting(topo, seed=0))
        _print_kernel_profile(net)
        assert capsys.readouterr().err == ""


class TestWorkloadCommand:
    def test_ring_allreduce_serial(self, capsys):
        rc = main([
            "workload", "sf:q=4", "--collective", "ring-allreduce",
            "--routing", "min", "--sizes", "1024,4096", "--ranks", "8",
        ])
        assert rc == 0
        out = capsys.readouterr().out
        assert "ring-allreduce" in out
        assert "completion ns" in out
        assert out.count("\n") >= 4  # header + two size rows

    def test_unknown_collective_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main([
                "workload", "sf:q=4", "--collective", "bogus",
            ])

    def test_orchestrated_matches_serial(self, capsys, tmp_path):
        common = [
            "workload", "sf:q=4", "--collective", "allgather",
            "--routing", "min", "--sizes", "512", "--ranks", "6",
        ]
        assert main(common) == 0
        serial = capsys.readouterr().out
        assert main(common + ["--jobs", "2", "--cache-dir", str(tmp_path)]) == 0
        parallel = capsys.readouterr().out

        def table_rows(text):
            return [ln for ln in text.splitlines() if ln.lstrip().startswith("512")]

        assert table_rows(serial) == table_rows(parallel)
        assert table_rows(serial)  # the row exists at all
