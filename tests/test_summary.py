"""Tests for the reproduction-summary orchestrator."""

import pytest

from repro.experiments.summary import ALL_EXPERIMENTS, run_all, write_summary


class TestRunAll:
    def test_known_ids_cover_all_figures(self):
        expected = {"table2", "diversity", "tail_effects"} | {
            f"fig{i}" for i in range(3, 15)
        }
        assert set(ALL_EXPERIMENTS) == expected

    def test_analytic_subset(self):
        results = run_all(only=["table2", "fig3"])
        assert set(results) == {"table2", "fig3"}
        assert "report" in results["table2"]

    def test_unknown_id_rejected(self):
        with pytest.raises(ValueError):
            run_all(only=["fig99"])

    def test_progress_callback(self):
        seen = []
        run_all(only=["table2"], progress=lambda i, s: seen.append((i, s)))
        assert seen and seen[0][0] == "table2"
        assert seen[0][1] >= 0


class TestWriteSummary:
    def test_markdown_output(self, tmp_path):
        results = run_all(only=["table2"])
        path = tmp_path / "summary.md"
        write_summary(results, path, scale="tiny")
        text = path.read_text()
        assert "# Reproduction summary" in text
        assert "## table2" in text
        assert "4-ML3B" in text
