"""Tests for the k-ML3B construction, including the exact Table 2."""

import numpy as np
import pytest

from repro.topology.ml3b import ml3b_table, valid_oft_k, verify_ml3b

#: Table 2 of the paper, verbatim.
PAPER_TABLE_2 = np.array(
    [
        [9, 10, 11, 12],
        [9, 0, 1, 2],
        [9, 3, 4, 5],
        [9, 6, 7, 8],
        [10, 0, 3, 6],
        [10, 1, 4, 7],
        [10, 2, 5, 8],
        [11, 0, 4, 8],
        [11, 1, 5, 6],
        [11, 2, 3, 7],
        [12, 0, 5, 7],
        [12, 1, 3, 8],
        [12, 2, 4, 6],
    ]
)


class TestValidK:
    def test_accepts_prime_plus_one(self):
        for k in (3, 4, 6, 8, 12, 14):
            assert valid_oft_k(k)

    def test_accepts_prime_power_plus_one(self):
        # GF-based MOLS extend the construction beyond the paper's
        # prime case (see repro.maths.mols.mols_prime_power).
        for k in (5, 9, 10, 17):
            assert valid_oft_k(k)

    def test_rejects_others(self):
        for k in (2, 7, 11, 13, 15, 16, 22):
            assert not valid_oft_k(k)


class TestTable2:
    def test_exact_reproduction(self):
        assert np.array_equal(ml3b_table(4), PAPER_TABLE_2)

    def test_shape(self):
        t = ml3b_table(4)
        assert t.shape == (13, 4)  # RL = 1 + 4*3 = 13


class TestInvariants:
    @pytest.mark.parametrize("k", [3, 4, 6, 8, 12])
    def test_verify_passes(self, k):
        assert verify_ml3b(ml3b_table(k)) == []

    @pytest.mark.parametrize("k", [3, 4, 6])
    def test_rows_pairwise_intersect_once(self, k):
        t = ml3b_table(k)
        rows = [set(map(int, t[i])) for i in range(t.shape[0])]
        for i in range(len(rows)):
            for j in range(i + 1, len(rows)):
                assert len(rows[i] & rows[j]) == 1

    @pytest.mark.parametrize("k", [3, 4, 6])
    def test_every_value_appears_k_times(self, k):
        t = ml3b_table(k)
        counts = np.bincount(t.ravel(), minlength=t.shape[0])
        assert (counts == k).all()

    @pytest.mark.parametrize("k", [3, 4, 6])
    def test_rows_have_distinct_values(self, k):
        t = ml3b_table(k)
        for i in range(t.shape[0]):
            assert len(set(map(int, t[i]))) == k

    def test_rejects_invalid_k(self):
        with pytest.raises(ValueError):
            ml3b_table(7)  # 6 is not a prime power
        with pytest.raises(ValueError):
            ml3b_table(2)

    def test_prime_power_extensions_valid(self):
        for k in (5, 9, 10):
            assert verify_ml3b(ml3b_table(k)) == []


class TestVerifier:
    def test_detects_bad_shape(self):
        assert verify_ml3b(np.zeros((4, 4), dtype=int))

    def test_detects_out_of_range(self):
        t = ml3b_table(3).copy()
        t[0, 0] = 99
        assert any("range" in p for p in verify_ml3b(t))

    def test_detects_duplicate_in_row(self):
        t = ml3b_table(3).copy()
        t[1, 1] = t[1, 0]
        assert verify_ml3b(t)

    def test_detects_broken_intersection(self):
        t = ml3b_table(4).copy()
        # Swap two distinct values across rows to break the design.
        a, b = int(t[1, 1]), int(t[4, 2])
        assert a != b
        t[1, 1], t[4, 2] = b, a
        assert verify_ml3b(t)
