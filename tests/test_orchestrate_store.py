"""ResultStore cache keying and persistence semantics.

The cache contract: *every* result-determining field of a job spec —
including each SimConfig value and the seed — participates in the
content hash, while presentation-only fields (``tag``) do not.
"""

import dataclasses
import json
import threading
import time

import pytest

from repro.orchestrate import CACHE_VERSION, Job, JobResult, ResultStore, sim_config_dict
from repro.sim.config import SimConfig


def make_job(**overrides) -> Job:
    base = dict(
        kind="sweep",
        topology="sf:q=5,p=floor",
        routing="ugal",
        routing_kwargs={"cost_mode": "sf", "c_sf": 1.0, "num_indirect": 4},
        pattern="worstcase",
        pattern_kwargs={"seed": 3},
        load=0.4,
        seed=7,
        warmup_ns=200.0,
        measure_ns=600.0,
        arrival="poisson",
        config=sim_config_dict(SimConfig()),
    )
    base.update(overrides)
    return Job(**base)


class TestContentHash:
    def test_identical_specs_share_a_hash(self):
        assert make_job().content_hash() == make_job().content_hash()

    def test_every_scalar_field_changes_the_hash(self):
        base = make_job().content_hash()
        variants = [
            make_job(kind="exchange"),
            make_job(topology="sf:q=5,p=ceil"),
            make_job(routing="min", routing_kwargs={}),
            make_job(pattern="uniform", pattern_kwargs={}),
            make_job(load=0.5),
            make_job(seed=8),
            make_job(warmup_ns=300.0),
            make_job(measure_ns=700.0),
            make_job(arrival="bernoulli"),
            make_job(params={"extra": 1}),
        ]
        hashes = [job.content_hash() for job in variants]
        assert base not in hashes
        assert len(set(hashes)) == len(hashes)

    def test_routing_kwargs_values_change_the_hash(self):
        base = make_job().content_hash()
        tweaked = make_job(
            routing_kwargs={"cost_mode": "sf", "c_sf": 2.0, "num_indirect": 4}
        )
        assert tweaked.content_hash() != base

    def test_pattern_seed_changes_the_hash(self):
        assert make_job(pattern_kwargs={"seed": 4}).content_hash() != make_job().content_hash()

    def test_every_sim_config_field_changes_the_hash(self):
        base = make_job().content_hash()
        defaults = SimConfig()
        bumped = {
            "link_bandwidth_gbps": 200.0,
            "link_latency_ns": 60.0,
            "switch_latency_ns": 120.0,
            "buffer_bytes_per_port": 50_000,
            "packet_bytes": 512,
            "check": True,
            "backend": "batched",
            "faults": ["fail@600:0-1"],
            "fault_policy": "drop",
        }
        for field in dataclasses.fields(defaults):
            config = sim_config_dict(defaults)
            config[field.name] = bumped[field.name]
            assert make_job(config=config).content_hash() != base, field.name

    def test_tag_is_presentation_only(self):
        assert make_job(tag="fig6/sf").content_hash() == make_job(tag="other").content_hash()

    def test_roundtrip_through_dict(self):
        job = make_job(tag="x")
        clone = Job.from_dict(json.loads(json.dumps(job.to_dict())))
        assert clone == job
        assert clone.content_hash() == job.content_hash()


class TestResultStore:
    def result(self) -> JobResult:
        return JobResult(
            kind="sweep",
            payload={
                "load": 0.4, "throughput": 0.39, "mean_latency_ns": 512.0,
                "p99_latency_ns": 900.0, "ejected_packets": 123,
                "indirect_fraction": 0.25,
            },
            events=10_000,
            duration_s=1.5,
            worker_pid=4242,
        )

    def test_miss_then_hit(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        job = make_job()
        assert store.get(job) is None
        store.put(job, self.result())
        hit = store.get(job)
        assert hit is not None
        assert hit.cached is True
        assert hit.payload == self.result().payload
        assert hit.sweep_point().throughput == pytest.approx(0.39)
        assert len(store) == 1

    def test_changed_spec_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(make_job(), self.result())
        assert store.get(make_job(seed=8)) is None
        assert store.get(make_job(load=0.5)) is None
        config = sim_config_dict(SimConfig(packet_bytes=512))
        assert store.get(make_job(config=config)) is None

    def test_relabel_still_hits(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(make_job(tag="first"), self.result())
        assert store.get(make_job(tag="second")) is not None

    def test_invalidate(self, tmp_path):
        store = ResultStore(tmp_path)
        job = make_job()
        store.put(job, self.result())
        assert store.invalidate(job) is True
        assert store.get(job) is None
        assert store.invalidate(job) is False

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        job = make_job()
        path = store.put(job, self.result())
        path.write_text("{ not json")
        assert store.get(job) is None

    def test_version_mismatch_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        job = make_job()
        path = store.put(job, self.result())
        entry = json.loads(path.read_text())
        entry["version"] = CACHE_VERSION + 1
        path.write_text(json.dumps(entry))
        assert store.get(job) is None

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(make_job(), self.result())
        store.put(make_job(seed=8), self.result())
        assert store.clear() == 2
        assert len(store) == 0


class TestHousekeeping:
    """Shard/tmp cleanup and age-based pruning (the server's GC path)."""

    def result(self, value: float = 0.39) -> JobResult:
        return JobResult(kind="sweep", payload={"throughput": value})

    def test_invalidate_removes_empty_shard_dir(self, tmp_path):
        store = ResultStore(tmp_path)
        job = make_job()
        path = store.put(job, self.result())
        shard = path.parent
        assert store.invalidate(job) is True
        assert not shard.exists()

    def test_invalidate_keeps_shard_with_other_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        job = make_job()
        path = store.put(job, self.result())
        # Plant a sibling entry in the same shard directory.
        sibling = path.parent / ("f" * 64 + ".json")
        sibling.write_text("{}")
        store.invalidate(job)
        assert path.parent.exists()

    def test_clear_sweeps_orphaned_tmp_files_and_shards(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(make_job(), self.result())
        orphan = path.parent / "writer-died.tmp"
        orphan.write_text("partial")
        assert store.clear() == 1
        assert not orphan.exists()
        assert not path.parent.exists()
        assert list(tmp_path.glob("??")) == []

    def test_prune_drops_only_entries_past_cutoff(self, tmp_path):
        store = ResultStore(tmp_path)
        old_job, new_job = make_job(), make_job(seed=99)
        old_path = store.put(old_job, self.result())
        store.put(new_job, self.result())
        # Backdate the old entry's created stamp by a day.
        entry = json.loads(old_path.read_text())
        entry["created"] = time.time() - 86_400
        old_path.write_text(json.dumps(entry))

        assert store.prune(max_age_s=3600) == 1
        assert store.get(old_job) is None
        assert store.get(new_job) is not None
        assert not old_path.parent.exists() or any(old_path.parent.iterdir())

    def test_prune_uses_mtime_for_corrupt_entries(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(make_job(), self.result())
        path.write_text("{ not json")
        ancient = time.time() - 86_400
        import os

        os.utime(path, (ancient, ancient))
        assert store.prune(max_age_s=3600) == 1

    def test_prune_spares_fresh_tmp_files(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.put(make_job(), self.result())
        fresh_tmp = path.parent / "inflight.tmp"
        fresh_tmp.write_text("being written right now")
        assert store.prune(max_age_s=3600) == 0
        assert fresh_tmp.exists()  # younger than the cutoff: a live writer


class TestConcurrency:
    """Two writers to the same key plus readers mid-replace: the atomic
    temp-file + rename protocol means a reader sees one complete entry
    or a miss — never a torn file."""

    def make_result(self, value: float) -> JobResult:
        return JobResult(kind="sweep", payload={"throughput": value})

    def test_concurrent_writers_and_readers_never_corrupt(self, tmp_path):
        store = ResultStore(tmp_path)
        job = make_job()
        valid = {0.1, 0.2}
        errors = []
        stop = threading.Event()

        def writer(value: float):
            while not stop.is_set():
                try:
                    store.put(job, self.make_result(value))
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(f"writer: {exc!r}")
                    return

        def reader():
            while not stop.is_set():
                try:
                    hit = store.get(job)
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(f"reader: {exc!r}")
                    return
                if hit is not None and hit.payload["throughput"] not in valid:
                    errors.append(f"torn read: {hit.payload}")
                    return

        threads = [
            threading.Thread(target=writer, args=(0.1,)),
            threading.Thread(target=writer, args=(0.2,)),
            threading.Thread(target=reader),
            threading.Thread(target=reader),
        ]
        for t in threads:
            t.start()
        time.sleep(0.5)
        stop.set()
        for t in threads:
            t.join(timeout=10)
        assert errors == []
        # The survivor is one of the two complete writes.
        final = store.get(job)
        assert final is not None
        assert final.payload["throughput"] in valid
        # No writer debris left behind.
        assert list(tmp_path.glob("??/*.tmp")) == []

    def test_put_survives_concurrent_shard_removal(self, tmp_path):
        store = ResultStore(tmp_path)
        job = make_job()
        errors = []
        stop = threading.Event()

        def churn():
            # invalidate() rmdirs the shard when it empties; put() must
            # recreate it rather than crash on the race.
            while not stop.is_set():
                store.invalidate(job)

        def write():
            while not stop.is_set():
                try:
                    store.put(job, self.make_result(0.5))
                except Exception as exc:  # pragma: no cover - failure path
                    errors.append(repr(exc))
                    return

        threads = [threading.Thread(target=churn), threading.Thread(target=write)]
        for t in threads:
            t.start()
        time.sleep(0.5)
        stop.set()
        for t in threads:
            t.join(timeout=10)
        assert errors == []
