"""ResultStore cache keying and persistence semantics.

The cache contract: *every* result-determining field of a job spec —
including each SimConfig value and the seed — participates in the
content hash, while presentation-only fields (``tag``) do not.
"""

import dataclasses
import json

import pytest

from repro.orchestrate import CACHE_VERSION, Job, JobResult, ResultStore, sim_config_dict
from repro.sim.config import SimConfig


def make_job(**overrides) -> Job:
    base = dict(
        kind="sweep",
        topology="sf:q=5,p=floor",
        routing="ugal",
        routing_kwargs={"cost_mode": "sf", "c_sf": 1.0, "num_indirect": 4},
        pattern="worstcase",
        pattern_kwargs={"seed": 3},
        load=0.4,
        seed=7,
        warmup_ns=200.0,
        measure_ns=600.0,
        arrival="poisson",
        config=sim_config_dict(SimConfig()),
    )
    base.update(overrides)
    return Job(**base)


class TestContentHash:
    def test_identical_specs_share_a_hash(self):
        assert make_job().content_hash() == make_job().content_hash()

    def test_every_scalar_field_changes_the_hash(self):
        base = make_job().content_hash()
        variants = [
            make_job(kind="exchange"),
            make_job(topology="sf:q=5,p=ceil"),
            make_job(routing="min", routing_kwargs={}),
            make_job(pattern="uniform", pattern_kwargs={}),
            make_job(load=0.5),
            make_job(seed=8),
            make_job(warmup_ns=300.0),
            make_job(measure_ns=700.0),
            make_job(arrival="bernoulli"),
            make_job(params={"extra": 1}),
        ]
        hashes = [job.content_hash() for job in variants]
        assert base not in hashes
        assert len(set(hashes)) == len(hashes)

    def test_routing_kwargs_values_change_the_hash(self):
        base = make_job().content_hash()
        tweaked = make_job(
            routing_kwargs={"cost_mode": "sf", "c_sf": 2.0, "num_indirect": 4}
        )
        assert tweaked.content_hash() != base

    def test_pattern_seed_changes_the_hash(self):
        assert make_job(pattern_kwargs={"seed": 4}).content_hash() != make_job().content_hash()

    def test_every_sim_config_field_changes_the_hash(self):
        base = make_job().content_hash()
        defaults = SimConfig()
        bumped = {
            "link_bandwidth_gbps": 200.0,
            "link_latency_ns": 60.0,
            "switch_latency_ns": 120.0,
            "buffer_bytes_per_port": 50_000,
            "packet_bytes": 512,
            "check": True,
        }
        for field in dataclasses.fields(defaults):
            config = sim_config_dict(defaults)
            config[field.name] = bumped[field.name]
            assert make_job(config=config).content_hash() != base, field.name

    def test_tag_is_presentation_only(self):
        assert make_job(tag="fig6/sf").content_hash() == make_job(tag="other").content_hash()

    def test_roundtrip_through_dict(self):
        job = make_job(tag="x")
        clone = Job.from_dict(json.loads(json.dumps(job.to_dict())))
        assert clone == job
        assert clone.content_hash() == job.content_hash()


class TestResultStore:
    def result(self) -> JobResult:
        return JobResult(
            kind="sweep",
            payload={
                "load": 0.4, "throughput": 0.39, "mean_latency_ns": 512.0,
                "p99_latency_ns": 900.0, "ejected_packets": 123,
                "indirect_fraction": 0.25,
            },
            events=10_000,
            duration_s=1.5,
            worker_pid=4242,
        )

    def test_miss_then_hit(self, tmp_path):
        store = ResultStore(tmp_path / "cache")
        job = make_job()
        assert store.get(job) is None
        store.put(job, self.result())
        hit = store.get(job)
        assert hit is not None
        assert hit.cached is True
        assert hit.payload == self.result().payload
        assert hit.sweep_point().throughput == pytest.approx(0.39)
        assert len(store) == 1

    def test_changed_spec_misses(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(make_job(), self.result())
        assert store.get(make_job(seed=8)) is None
        assert store.get(make_job(load=0.5)) is None
        config = sim_config_dict(SimConfig(packet_bytes=512))
        assert store.get(make_job(config=config)) is None

    def test_relabel_still_hits(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(make_job(tag="first"), self.result())
        assert store.get(make_job(tag="second")) is not None

    def test_invalidate(self, tmp_path):
        store = ResultStore(tmp_path)
        job = make_job()
        store.put(job, self.result())
        assert store.invalidate(job) is True
        assert store.get(job) is None
        assert store.invalidate(job) is False

    def test_corrupt_entry_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        job = make_job()
        path = store.put(job, self.result())
        path.write_text("{ not json")
        assert store.get(job) is None

    def test_version_mismatch_reads_as_miss(self, tmp_path):
        store = ResultStore(tmp_path)
        job = make_job()
        path = store.put(job, self.result())
        entry = json.loads(path.read_text())
        entry["version"] = CACHE_VERSION + 1
        path.write_text(json.dumps(entry))
        assert store.get(job) is None

    def test_clear(self, tmp_path):
        store = ResultStore(tmp_path)
        store.put(make_job(), self.result())
        store.put(make_job(seed=8), self.result())
        assert store.clear() == 2
        assert len(store) == 0
