"""Deeper finite-field tests: known tables, field morphisms, subfields."""

import pytest

from repro.maths.galois import GaloisField, get_field


class TestGF4KnownStructure:
    """GF(4) = {0, 1, x, x+1} with x^2 = x + 1 (the canonical table)."""

    @pytest.fixture(scope="class")
    def f4(self):
        return get_field(4)

    def test_addition_is_xor(self, f4):
        # In characteristic 2 with the bit encoding, + is XOR.
        for a in range(4):
            for b in range(4):
                assert f4.add(a, b) == a ^ b

    def test_every_element_self_inverse_additively(self, f4):
        for a in range(4):
            assert f4.add(a, a) == 0

    def test_multiplicative_group_cyclic_of_order_3(self, f4):
        xi = f4.primitive_element
        assert f4.element_order(xi) == 3
        powers = {f4.pow(xi, e) for e in range(3)}
        assert powers == {1, 2, 3}


class TestGF8GF9:
    def test_gf8_addition_is_xor(self):
        f = get_field(8)
        for a in range(8):
            for b in range(8):
                assert f.add(a, b) == a ^ b

    def test_gf9_addition_is_base3_digitwise(self):
        f = get_field(9)
        for a in range(9):
            for b in range(9):
                expected = (((a % 3) + (b % 3)) % 3) + 3 * (((a // 3) + (b // 3)) % 3)
                assert f.add(a, b) == expected

    def test_gf9_has_char_3(self):
        f = get_field(9)
        for a in range(9):
            assert f.add(f.add(a, a), a) == 0  # 3a = 0


class TestFrobenius:
    """The Frobenius map a -> a^p is a field automorphism of GF(p^n)."""

    @pytest.mark.parametrize("q,p", [(4, 2), (8, 2), (9, 3), (27, 3), (25, 5)])
    def test_freshman_dream(self, q, p):
        f = get_field(q)
        for a in range(q):
            for b in range(0, q, max(1, q // 6)):
                assert f.pow(f.add(a, b), p) == f.add(f.pow(a, p), f.pow(b, p))

    @pytest.mark.parametrize("q,p", [(4, 2), (9, 3), (25, 5)])
    def test_frobenius_fixes_prime_subfield(self, q, p):
        f = get_field(q)
        # The prime subfield is {0, 1, 1+1, ...}.
        element = 0
        for _ in range(p):
            assert f.pow(element, p) == element
            element = f.add(element, 1)

    @pytest.mark.parametrize("q,p,n", [(4, 2, 2), (8, 2, 3), (9, 3, 2), (27, 3, 3)])
    def test_frobenius_order_n(self, q, p, n):
        # Applying Frobenius n times is the identity on GF(p^n).
        f = get_field(q)
        for a in range(q):
            x = a
            for _ in range(n):
                x = f.pow(x, p)
            assert x == a


class TestFermatAndRoots:
    @pytest.mark.parametrize("q", [5, 7, 9, 13, 16])
    def test_fermat_euler(self, q):
        f = get_field(q)
        for a in range(1, q):
            assert f.pow(a, q - 1) == 1

    @pytest.mark.parametrize("q", [5, 9, 13])
    def test_square_roots_counted(self, q):
        # In odd characteristic exactly (q-1)/2 nonzero elements are
        # squares, each with exactly two square roots.
        f = get_field(q)
        squares = {}
        for a in range(1, q):
            squares.setdefault(f.mul(a, a), []).append(a)
        assert len(squares) == (q - 1) // 2
        assert all(len(roots) == 2 for roots in squares.values())

    def test_char2_every_element_is_a_square(self):
        f = get_field(16)
        squares = {f.mul(a, a) for a in range(16)}
        assert squares == set(range(16))


class TestLargerFields:
    def test_gf49_and_gf64_valid(self):
        for q in (49, 64):
            f = GaloisField(q)
            assert f.mul(f.primitive_element, f.inv(f.primitive_element)) == 1
            assert f.element_order(f.primitive_element) == q - 1

    def test_gf81(self):
        f = GaloisField(81)
        assert (f.p, f.n) == (3, 4)
        # Spot-check distributivity on a few triples.
        for a, b, c in ((5, 17, 44), (80, 1, 2), (27, 9, 3)):
            assert f.mul(a, f.add(b, c)) == f.add(f.mul(a, b), f.mul(a, c))
