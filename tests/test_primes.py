"""Unit tests for repro.maths.primes."""

import pytest
from hypothesis import given, strategies as st

from repro.maths.primes import (
    factorize,
    is_prime,
    is_prime_power,
    next_prime,
    next_prime_power,
    prime_power_decomposition,
    primes_up_to,
)


class TestIsPrime:
    def test_small_primes(self):
        for p in (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41):
            assert is_prime(p)

    def test_small_composites(self):
        for n in (0, 1, 4, 6, 8, 9, 10, 12, 15, 21, 25, 27, 33, 39, 49):
            assert not is_prime(n)

    def test_negative(self):
        assert not is_prime(-7)

    def test_large_prime(self):
        assert is_prime(2_147_483_647)  # Mersenne prime 2^31 - 1

    def test_large_composite(self):
        assert not is_prime(2_147_483_647 * 3)

    def test_carmichael_numbers(self):
        # Classic Fermat pseudoprimes that must not fool Miller-Rabin.
        for n in (561, 1105, 1729, 2465, 2821, 6601, 8911):
            assert not is_prime(n)

    def test_square_of_prime(self):
        assert not is_prime(10007**2)

    @given(st.integers(min_value=2, max_value=100_000))
    def test_agrees_with_trial_division(self, n):
        trial = all(n % d for d in range(2, int(n**0.5) + 1))
        assert is_prime(n) == trial


class TestPrimesUpTo:
    def test_empty(self):
        assert primes_up_to(1) == []
        assert primes_up_to(0) == []

    def test_small(self):
        assert primes_up_to(20) == [2, 3, 5, 7, 11, 13, 17, 19]

    def test_limit_inclusive(self):
        assert 97 in primes_up_to(97)

    def test_count_below_1000(self):
        assert len(primes_up_to(1000)) == 168

    def test_all_prime(self):
        assert all(is_prime(p) for p in primes_up_to(500))


class TestFactorize:
    def test_one(self):
        assert factorize(1) == {}

    def test_prime(self):
        assert factorize(13) == {13: 1}

    def test_prime_power(self):
        assert factorize(243) == {3: 5}

    def test_mixed(self):
        assert factorize(360) == {2: 3, 3: 2, 5: 1}

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            factorize(0)
        with pytest.raises(ValueError):
            factorize(-6)

    @given(st.integers(min_value=1, max_value=100_000))
    def test_product_reconstructs(self, n):
        product = 1
        for p, e in factorize(n).items():
            assert is_prime(p)
            product *= p**e
        assert product == n


class TestPrimePowers:
    def test_primes_are_prime_powers(self):
        for p in (2, 3, 13, 101):
            assert prime_power_decomposition(p) == (p, 1)

    def test_powers(self):
        assert prime_power_decomposition(8) == (2, 3)
        assert prime_power_decomposition(9) == (3, 2)
        assert prime_power_decomposition(49) == (7, 2)
        assert prime_power_decomposition(128) == (2, 7)

    def test_non_prime_powers(self):
        for n in (0, 1, 6, 10, 12, 100, 1000):
            assert prime_power_decomposition(n) is None
            assert not is_prime_power(n)

    def test_slim_fly_relevant_values(self):
        # The q values used throughout the paper and tests.
        for q in (4, 5, 7, 8, 9, 11, 13, 16, 17, 19, 23, 25):
            assert is_prime_power(q)

    @given(st.integers(min_value=2, max_value=2000))
    def test_decomposition_consistent(self, n):
        decomp = prime_power_decomposition(n)
        if decomp is not None:
            p, e = decomp
            assert is_prime(p) and p**e == n


class TestNext:
    def test_next_prime(self):
        assert next_prime(1) == 2
        assert next_prime(2) == 3
        assert next_prime(13) == 17
        assert next_prime(89) == 97

    def test_next_prime_power(self):
        assert next_prime_power(7) == 8
        assert next_prime_power(8) == 9
        assert next_prime_power(9) == 11
        assert next_prime_power(25) == 27

    @given(st.integers(min_value=0, max_value=10_000))
    def test_next_prime_is_prime_and_greater(self, n):
        p = next_prime(n)
        assert p > n and is_prime(p)
