"""Tests for UGAL-L adaptive routing (Sec. 3.3)."""

import pytest

from repro.routing import UGALRouting
from repro.routing.base import ROUTE_INDIRECT, ROUTE_MINIMAL


class FakeCongestion:
    def __init__(self, default=0, lengths=None, capacity=100):
        self.default = default
        self.lengths = lengths or {}
        self.capacity = capacity

    def queue_len(self, router, neighbor):
        return self.lengths.get((router, neighbor), self.default)

    def queue_capacity(self):
        return self.capacity


class TestParameterValidation:
    def test_rejects_bad_cost_mode(self, sf5):
        with pytest.raises(ValueError):
            UGALRouting(sf5, cost_mode="global")

    def test_rejects_bad_ni(self, sf5):
        with pytest.raises(ValueError):
            UGALRouting(sf5, num_indirect=0)

    def test_rejects_bad_threshold(self, sf5):
        with pytest.raises(ValueError):
            UGALRouting(sf5, threshold=1.5)

    def test_name_reflects_variant(self, sf5):
        assert UGALRouting(sf5).name == "UGAL-A"
        assert UGALRouting(sf5, threshold=0.1).name == "UGAL-ATh"

    def test_describe(self, sf5, mlfm4):
        s = UGALRouting(sf5, cost_mode="sf", c_sf=1.0, num_indirect=4).describe()
        assert "cSF=1" in s and "nI=4" in s
        s = UGALRouting(mlfm4, c=2.0, num_indirect=5, threshold=0.1).describe()
        assert "c=2" in s and "T=10%" in s


class TestDecisions:
    def test_idle_network_routes_minimally(self, sf5):
        ug = UGALRouting(sf5, cost_mode="sf", seed=1)
        for d in range(1, 40, 3):
            assert ug.route(0, d).kind == ROUTE_MINIMAL

    def test_self_route(self, sf5):
        ug = UGALRouting(sf5, seed=1)
        assert ug.route(6, 6).routers == (6,)

    def test_congested_minimal_goes_indirect(self, mlfm4):
        ug = UGALRouting(mlfm4, c=1.0, num_indirect=8, seed=1)
        # Cross-column pair: single minimal path through one GR.
        src, dst = 0, 7
        middle = mlfm4.common_neighbors(src, dst)[0]
        ctx = FakeCongestion(default=0, lengths={(src, middle): 50})
        kinds = {ug.route(src, dst, ctx).kind for _ in range(20)}
        assert ROUTE_INDIRECT in kinds

    def test_high_penalty_keeps_minimal(self, mlfm4):
        ug = UGALRouting(mlfm4, c=1000.0, num_indirect=4, seed=1)
        src, dst = 0, 7
        middle = mlfm4.common_neighbors(src, dst)[0]
        # Minimal queue 5, all others 1: cost 5 < 1000*1.
        ctx = FakeCongestion(default=1, lengths={(src, middle): 5})
        for _ in range(20):
            assert ug.route(src, dst, ctx).kind == ROUTE_MINIMAL

    def test_tie_prefers_minimal(self, mlfm4):
        ug = UGALRouting(mlfm4, c=1.0, num_indirect=4, seed=1)
        ctx = FakeCongestion(default=3)  # all queues equal
        for _ in range(20):
            assert ug.route(0, 7, ctx).kind == ROUTE_MINIMAL

    def test_threshold_forces_minimal_below_t(self, mlfm4):
        ug = UGALRouting(mlfm4, c=0.001, num_indirect=8, threshold=0.10, seed=1)
        src, dst = 0, 7
        middle = mlfm4.common_neighbors(src, dst)[0]
        # q_M = 5 < 10 (10% of 100): threshold short-circuits even though
        # the adaptive comparison would pick an indirect route.
        ctx = FakeCongestion(default=0, lengths={(src, middle): 5}, capacity=100)
        for _ in range(20):
            assert ug.route(src, dst, ctx).kind == ROUTE_MINIMAL

    def test_threshold_allows_adaptive_above_t(self, mlfm4):
        ug = UGALRouting(mlfm4, c=1.0, num_indirect=8, threshold=0.10, seed=1)
        src, dst = 0, 7
        middle = mlfm4.common_neighbors(src, dst)[0]
        ctx = FakeCongestion(default=0, lengths={(src, middle): 50}, capacity=100)
        kinds = {ug.route(src, dst, ctx).kind for _ in range(20)}
        assert ROUTE_INDIRECT in kinds

    def test_sf_cost_scales_with_length_ratio(self, sf5):
        # With cSF high, longer indirect paths are penalised away even
        # under minimal congestion.
        ug = UGALRouting(sf5, cost_mode="sf", c_sf=50.0, num_indirect=8, seed=1)
        n = sf5.neighbors(0)[0]
        ctx = FakeCongestion(default=1, lengths={(0, n): 3})
        for _ in range(20):
            assert ug.route(0, n, ctx).kind == ROUTE_MINIMAL

    def test_vc_count_covers_indirect(self, sf5, mlfm4, oft4):
        assert UGALRouting(sf5).num_vcs == 4
        assert UGALRouting(mlfm4).num_vcs == 2
        assert UGALRouting(oft4).num_vcs == 2

    def test_reproducible(self, sf5):
        a = UGALRouting(sf5, cost_mode="sf", seed=9)
        b = UGALRouting(sf5, cost_mode="sf", seed=9)
        ctx = FakeCongestion(default=2)
        for d in range(1, 30, 3):
            assert a.route(0, d, ctx).routers == b.route(0, d, ctx).routers
