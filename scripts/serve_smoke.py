#!/usr/bin/env python3
"""End-to-end smoke of ``repro serve`` — run by the serve-smoke CI job.

Exercises the full service contract against a real server subprocess:

1. start ``python -m repro serve`` on a free port, fresh store;
2. POST the same tiny simulate job from two concurrent clients —
   exactly one must execute and one coalesce (checked via /v1/stats);
3. stream ``/v1/jobs/{id}/events`` NDJSON to completion;
4. verify both clients got bit-identical payloads equal to the
   serial-path result of the same job (the golden the conformance
   suite locks down: parallel == serial for fixed seeds);
5. a tenant over its queue quota gets 429;
6. SIGTERM → clean drain: exit code 0 and still-queued work persisted.

Exit status is 0 iff every step held.  Usable locally:

    PYTHONPATH=src python scripts/serve_smoke.py
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import tempfile
import threading
import time
import urllib.error
import urllib.request

REPO = pathlib.Path(__file__).resolve().parent.parent

#: Works both against an installed package (CI) and a bare checkout.
ENV = dict(
    os.environ,
    PYTHONPATH=os.pathsep.join(
        [str(REPO / "src")] + os.environ.get("PYTHONPATH", "").split(os.pathsep)
    ).rstrip(os.pathsep),
)

#: Tiny but real: one Slim Fly sweep point, ~a second of simulation.
SIM_JOB = {
    "kind": "sweep",
    "topology": "sf:q=5,p=floor",
    "routing": "min",
    "pattern": "uniform",
    "load": 0.3,
    "seed": 0,
    "warmup_ns": 300.0,
    "measure_ns": 1200.0,
}

SLOW_JOB = {"kind": "probe", "params": {"behavior": "sleep", "seconds": 5.0}}


def fail(message: str) -> None:
    print(f"FAIL: {message}", file=sys.stderr)
    sys.exit(1)


def check(condition: bool, message: str) -> None:
    if not condition:
        fail(message)
    print(f"ok: {message}")


def api(base, path, payload=None, tenant="smoke", timeout=60):
    req = urllib.request.Request(
        base + path,
        data=json.dumps(payload).encode() if payload is not None else None,
        headers={"Content-Type": "application/json", "X-Tenant": tenant},
        method="POST" if payload is not None else "GET",
    )
    with urllib.request.urlopen(req, timeout=timeout) as resp:
        return resp.status, json.load(resp)


def main() -> int:
    workdir = pathlib.Path(tempfile.mkdtemp(prefix="repro-serve-smoke-"))
    store = workdir / "store"
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", "--host", "127.0.0.1",
         "--port", "0", "--workers", "2", "--store", str(store),
         "--max-queued", "1", "--max-running", "2"],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
        cwd=REPO,
        env=ENV,
    )
    try:
        # Parse the ready line for the bound port.
        line = proc.stdout.readline()
        if "listening on" not in line:
            fail(f"unexpected server banner: {line!r}")
        base = line.split("listening on ")[1].split()[0]
        print(f"server up at {base}")

        # -- two concurrent identical submissions -------------------------
        records, barrier = [None, None], threading.Barrier(2)

        def submit(slot: int) -> None:
            barrier.wait()
            _status, record = api(base, "/v1/jobs", SIM_JOB)
            records[slot] = record

        threads = [threading.Thread(target=submit, args=(i,)) for i in (0, 1)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        check(all(records), "both concurrent submissions accepted")
        check(
            sum(1 for r in records if r["coalesced"]) == 1,
            "exactly one of two identical requests coalesced",
        )

        # -- stream events to completion -----------------------------------
        ran = next(r for r in records if not r["coalesced"])
        types = []
        with urllib.request.urlopen(base + ran["events"], timeout=120) as resp:
            for raw in resp:
                event = json.loads(raw)
                types.append(event["type"])
                if event["type"] == "record_done":
                    check(event["status"] == "done", "streamed job finished 'done'")
                    break
        check("job_done" in types, f"event stream carried scheduler telemetry {types}")

        # -- bit-identical results matching the serial path ----------------
        payloads = []
        for record in records:
            while True:
                _s, rec = api(base, "/v1/jobs/" + record["id"])
                if rec["status"] in ("done", "failed"):
                    break
                time.sleep(0.2)
            check(rec["status"] == "done", f"{rec['id']} completed")
            payloads.append(rec["result"]["payload"])
        check(payloads[0] == payloads[1], "both clients got bit-identical payloads")

        sys.path.insert(0, str(REPO / "src"))
        from repro.orchestrate.job import Job, run_job

        golden = run_job(Job.from_dict(dict(SIM_JOB))).payload
        check(payloads[0] == golden, "served result matches serial-path golden")

        _s, stats = api(base, "/v1/stats")
        m = stats["metrics"]
        check(m["coalesced"] == 1, "/v1/stats counts 1 coalesce")
        check(m["misses"] == 1, "/v1/stats counts 1 execution")

        # -- quota: queue slot exhausted answers 429 ------------------------
        # max_running=2 absorbs the first two, the third occupies the
        # single queued slot (max_queued=1), the fourth must bounce.
        for seed in (0, 1, 2):
            api(base, "/v1/jobs", dict(SLOW_JOB, seed=seed), tenant="greedy")
        try:
            api(base, "/v1/jobs", dict(SLOW_JOB, seed=3), tenant="greedy")
        except urllib.error.HTTPError as exc:
            check(exc.code == 429, "over-quota tenant got 429")
        else:
            fail("over-quota submission was not rejected")

        # -- SIGTERM: graceful drain ---------------------------------------
        proc.send_signal(signal.SIGTERM)
        code = proc.wait(timeout=60)
        check(code == 0, f"server drained cleanly (exit {code})")
        state = store / "serve" / "queue_state.json"
        check(state.exists(), "queued work persisted for restart")
        entries = json.loads(state.read_text())["entries"]
        check(len(entries) >= 1, f"{len(entries)} queued job(s) in drain state")
        print("serve smoke: all checks passed")
        return 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=10)


if __name__ == "__main__":
    sys.exit(main())
